//! Shared `prime_field!` macro: generates a Montgomery-form prime-field type
//! on top of [`ibbe_bigint::MontParams`].
//!
//! Both [`crate::fp::Fp`] (base field, 6 limbs) and [`crate::fr::Scalar`]
//! (scalar field, 4 limbs) are instances; field-specific extras (square
//! roots, wide reduction) live next to each instantiation.

/// Generates a prime-field newtype with constructors, arithmetic operator
/// impls, exponentiation, inversion, serialization and a canonical `Debug`.
macro_rules! prime_field {
    (
        $(#[$doc:meta])*
        $name:ident, $limbs:expr, $modulus:expr, $bytes:expr
    ) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) ibbe_bigint::Uint<$limbs>);

        impl $name {
            /// Montgomery parameters of the field modulus.
            pub(crate) const PARAMS: ibbe_bigint::MontParams<$limbs> =
                ibbe_bigint::MontParams::new($modulus);

            /// Number of 64-bit limbs in an element.
            pub const LIMBS: usize = $limbs;

            /// Size of the canonical big-endian encoding in bytes.
            pub const BYTES: usize = $bytes;

            /// Additive identity.
            pub const ZERO: Self = Self(ibbe_bigint::Uint::ZERO);

            /// Multiplicative identity (Montgomery form of 1).
            pub const ONE: Self = Self(Self::PARAMS.one());

            /// The field modulus as an integer.
            pub fn modulus() -> ibbe_bigint::Uint<$limbs> {
                Self::PARAMS.modulus()
            }

            /// Element from a small integer.
            pub fn from_u64(v: u64) -> Self {
                Self(Self::PARAMS.to_mont(&ibbe_bigint::Uint::from_u64(v)))
            }

            /// Element from a canonical integer, if it is `< modulus`.
            pub fn from_uint(v: &ibbe_bigint::Uint<$limbs>) -> Option<Self> {
                use core::cmp::Ordering;
                match v.cmp_uint(&Self::PARAMS.modulus()) {
                    Ordering::Less => Some(Self(Self::PARAMS.to_mont(v))),
                    _ => None,
                }
            }

            /// Canonical integer representation of the element.
            pub fn to_uint(&self) -> ibbe_bigint::Uint<$limbs> {
                Self::PARAMS.from_mont(&self.0)
            }

            /// True for the additive identity.
            #[inline]
            pub fn is_zero(&self) -> bool {
                self.0.is_zero()
            }

            /// `self²`.
            #[inline]
            pub fn square(&self) -> Self {
                Self(Self::PARAMS.square(&self.0))
            }

            /// `2·self`.
            #[inline]
            pub fn double(&self) -> Self {
                Self(Self::PARAMS.double(&self.0))
            }

            /// Exponentiation by a canonical (plain-integer) exponent.
            pub fn pow<const E: usize>(&self, exp: &ibbe_bigint::Uint<E>) -> Self {
                Self(Self::PARAMS.pow(&self.0, exp))
            }

            /// Multiplicative inverse; `None` for zero.
            pub fn invert(&self) -> Option<Self> {
                Self::PARAMS.inverse(&self.0).map(Self)
            }

            /// Uniformly random field element.
            pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut lo = [0u64; $limbs];
                let mut hi = [0u64; $limbs];
                for l in lo.iter_mut().chain(hi.iter_mut()) {
                    *l = rng.next_u64();
                }
                let reduced = Self::PARAMS.reduce_wide(
                    &ibbe_bigint::Uint::new(lo),
                    &ibbe_bigint::Uint::new(hi),
                );
                Self(Self::PARAMS.to_mont(&reduced))
            }

            /// Canonical big-endian encoding.
            pub fn to_bytes(&self) -> [u8; $bytes] {
                let mut out = [0u8; $bytes];
                self.to_uint().write_be_bytes(&mut out);
                out
            }

            /// Parses a canonical big-endian encoding; `None` if out of range.
            pub fn from_bytes(bytes: &[u8; $bytes]) -> Option<Self> {
                let v = ibbe_bigint::Uint::<$limbs>::from_be_bytes(bytes);
                Self::from_uint(&v)
            }

            /// Reduces an arbitrary big-endian byte string into the field.
            pub fn from_bytes_reduced(bytes: &[u8]) -> Self {
                let reduced = Self::PARAMS.reduce_be_bytes(bytes);
                Self(Self::PARAMS.to_mont(&reduced))
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::ZERO
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.to_uint())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                core::fmt::Debug::fmt(self, f)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(Self::PARAMS.add(&self.0, &rhs.0))
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(Self::PARAMS.sub(&self.0, &rhs.0))
            }
        }

        impl core::ops::Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                Self(Self::PARAMS.mul(&self.0, &rhs.0))
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(Self::PARAMS.neg(&self.0))
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl core::ops::MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }

        impl core::iter::Product for $name {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ONE, |a, b| a * b)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self::from_u64(v)
            }
        }
    };
}

pub(crate) use prime_field;
