//! Cubic extension `Fp6 = Fp2[v] / (v³ - ξ)` with `ξ = u + 1`.

use crate::fp2::Fp2;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element `c0 + c1·v + c2·v²` of `Fp6`, with `v³ = ξ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp6 {
    /// Constant coefficient.
    pub c0: Fp2,
    /// Coefficient of `v`.
    pub c1: Fp2,
    /// Coefficient of `v²`.
    pub c2: Fp2,
}

impl Fp6 {
    /// Additive identity.
    pub const ZERO: Self = Self {
        c0: Fp2::ZERO,
        c1: Fp2::ZERO,
        c2: Fp2::ZERO,
    };

    /// Multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp2::ONE,
        c1: Fp2::ZERO,
        c2: Fp2::ZERO,
    };

    /// Constructs `c0 + c1·v + c2·v²`.
    pub const fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Embeds an `Fp2` element.
    pub const fn from_fp2(c0: Fp2) -> Self {
        Self {
            c0,
            c1: Fp2::ZERO,
            c2: Fp2::ZERO,
        }
    }

    /// True for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    /// Uniformly random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fp2::random(rng),
            c1: Fp2::random(rng),
            c2: Fp2::random(rng),
        }
    }

    /// Multiplication by `v`: `(c0, c1, c2) ↦ (ξ·c2, c0, c1)`.
    pub fn mul_by_v(&self) -> Self {
        Self {
            c0: self.c2.mul_by_xi(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// `self²`.
    pub fn square(&self) -> Self {
        *self * *self
    }

    /// `2·self`.
    pub fn double(&self) -> Self {
        Self {
            c0: self.c0.double(),
            c1: self.c1.double(),
            c2: self.c2.double(),
        }
    }

    /// Multiplicative inverse; `None` for zero.
    ///
    /// Standard formula (Beuchat et al.): with
    /// `A = c0² - ξ·c1·c2`, `B = ξ·c2² - c0·c1`, `C = c1² - c0·c2` and
    /// `F = c0·A + ξ·(c2·B + c1·C)`, the inverse is `(A + B·v + C·v²)/F`.
    pub fn invert(&self) -> Option<Self> {
        let a = self.c0.square() - (self.c1 * self.c2).mul_by_xi();
        let b = self.c2.square().mul_by_xi() - self.c0 * self.c1;
        let c = self.c1.square() - self.c0 * self.c2;
        let f = self.c0 * a + (self.c2 * b + self.c1 * c).mul_by_xi();
        f.invert().map(|finv| Self {
            c0: a * finv,
            c1: b * finv,
            c2: c * finv,
        })
    }
}

impl Add for Fp6 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
            c2: self.c2 + rhs.c2,
        }
    }
}

impl Sub for Fp6 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
            c2: self.c2 - rhs.c2,
        }
    }
}

impl Neg for Fp6 {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
            c2: -self.c2,
        }
    }
}

impl Mul for Fp6 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom/Karatsuba-style interpolation with v³ = ξ:
        //   out0 = a0b0 + ξ[(a1+a2)(b1+b2) - a1b1 - a2b2]
        //   out1 = (a0+a1)(b0+b1) - a0b0 - a1b1 + ξ·a2b2
        //   out2 = (a0+a2)(b0+b2) - a0b0 - a2b2 + a1b1
        let aa = self.c0 * rhs.c0;
        let bb = self.c1 * rhs.c1;
        let cc = self.c2 * rhs.c2;
        let t1 = (self.c1 + self.c2) * (rhs.c1 + rhs.c2) - bb - cc;
        let t2 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - aa - bb;
        let t3 = (self.c0 + self.c2) * (rhs.c0 + rhs.c2) - aa - cc;
        Self {
            c0: aa + t1.mul_by_xi(),
            c1: t2 + cc.mul_by_xi(),
            c2: t3 + bb,
        }
    }
}

impl AddAssign for Fp6 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp6 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp6 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl core::fmt::Debug for Fp6 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp6({:?}, {:?}, {:?})", self.c0, self.c1, self.c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(13)
    }

    fn v() -> Fp6 {
        Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO)
    }

    #[test]
    fn v_cubed_is_xi() {
        let v3 = v() * v() * v();
        assert_eq!(v3, Fp6::from_fp2(Fp2::xi()));
    }

    #[test]
    fn mul_by_v_matches_explicit() {
        let mut rng = rng();
        let a = Fp6::random(&mut rng);
        assert_eq!(a.mul_by_v(), a * v());
    }

    #[test]
    fn axioms() {
        let mut rng = rng();
        for _ in 0..15 {
            let a = Fp6::random(&mut rng);
            let b = Fp6::random(&mut rng);
            let c = Fp6::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a * (b * c), (a * b) * c);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * Fp6::ONE, a);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inversion() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fp6::random(&mut rng);
            if !a.is_zero() {
                assert_eq!(a * a.invert().unwrap(), Fp6::ONE);
            }
        }
        assert!(Fp6::ZERO.invert().is_none());
    }

    #[test]
    fn embeds_fp2_multiplicatively() {
        let mut rng = rng();
        let a = Fp2::random(&mut rng);
        let b = Fp2::random(&mut rng);
        assert_eq!(Fp6::from_fp2(a) * Fp6::from_fp2(b), Fp6::from_fp2(a * b));
    }
}
