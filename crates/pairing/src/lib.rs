//! # ibbe-pairing — BLS12-381 pairing-based cryptography from scratch
//!
//! This crate is the reproduction's substitute for the PBC library (and its
//! GMP substrate) used by the original IBBE-SGX implementation. It provides:
//!
//! * the base field [`fp::Fp`] and scalar field [`fr::Scalar`],
//! * the tower `Fp2`/`Fp6`/`Fp12`,
//! * the groups [`G1Affine`]/[`G1Projective`] and [`G2Affine`]/[`G2Projective`],
//! * the target group [`Gt`] and the optimal ate [`pairing()`],
//! * hashing of identities to scalars and to `G1` ([`hash`]).
//!
//! The paper's Type-A PBC curve is replaced by BLS12-381; both expose the
//! same abstract interface `e : G1 × G2 → GT`, which is all the IBBE/IBE
//! constructions consume (see DESIGN.md §1 for the substitution argument).
//!
//! ## Example: verifying bilinearity
//!
//! ```
//! use ibbe_pairing::{pairing, G1Projective, G2Projective, Scalar};
//! # let mut rng = rand::thread_rng();
//! let a = Scalar::random_nonzero(&mut rng);
//! let p = G1Projective::generator().mul_scalar(&a).to_affine();
//! let q = G2Projective::generator().to_affine();
//! let lhs = pairing(&p, &q);
//! let rhs = pairing(&G1Projective::generator().to_affine(), &q).pow(&a);
//! assert_eq!(lhs, rhs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod field;

pub mod curve;
pub mod fp;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod fr;
pub mod g1;
pub mod g2;
pub mod gt;
pub mod hash;
pub mod k256;
#[allow(clippy::module_inception)]
pub mod pairing;

pub use curve::{Affine, Curve, CurveField, Projective};
pub use fp::Fp;
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fr::Scalar;
pub use g1::{G1Affine, G1Projective, G1_COMPRESSED_BYTES};
pub use g2::{G2Affine, G2Projective, G2_COMPRESSED_BYTES};
pub use gt::Gt;
pub use hash::{hash_to_g1, hash_to_scalar};
pub use k256::{K256Affine, K256Projective, ScalarK, K256_COMPRESSED_BYTES};
pub use pairing::{final_exponentiation, miller_loop, pairing};
