//! Quadratic extension `Fp12 = Fp6[w] / (w² - v)` — the pairing target field.

use crate::fp2::Fp2;
use crate::fp6::Fp6;
use core::ops::{Add, Mul, MulAssign, Neg, Sub};
use ibbe_bigint::Uint;

/// An element `c0 + c1·w` of `Fp12`, with `w² = v`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp12 {
    /// Constant coefficient (an `Fp6`).
    pub c0: Fp6,
    /// Coefficient of `w`.
    pub c1: Fp6,
}

impl Fp12 {
    /// Additive identity.
    pub const ZERO: Self = Self {
        c0: Fp6::ZERO,
        c1: Fp6::ZERO,
    };

    /// Multiplicative identity.
    pub const ONE: Self = Self {
        c0: Fp6::ONE,
        c1: Fp6::ZERO,
    };

    /// Constructs `c0 + c1·w`.
    pub const fn new(c0: Fp6, c1: Fp6) -> Self {
        Self { c0, c1 }
    }

    /// True for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Uniformly random element (for tests).
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: Fp6::random(rng),
            c1: Fp6::random(rng),
        }
    }

    /// `self²`.
    pub fn square(&self) -> Self {
        // (a + bw)² = a² + b²v + 2abw
        let ab = self.c0 * self.c1;
        let c0 = self.c0.square() + self.c1.square().mul_by_v();
        Self {
            c0,
            c1: ab.double(),
        }
    }

    /// Conjugation over `Fp6`: `c0 - c1·w`. Equals the `p⁶`-power Frobenius,
    /// and the inverse on the cyclotomic subgroup (unitary elements).
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Multiplicative inverse; `None` for zero.
    pub fn invert(&self) -> Option<Self> {
        // 1/(a + bw) = (a - bw) / (a² - b²·v)
        let denom = self.c0.square() - self.c1.square().mul_by_v();
        denom.invert().map(|d| Self {
            c0: self.c0 * d,
            c1: -(self.c1 * d),
        })
    }

    /// Exponentiation by a canonical integer exponent
    /// (square-and-multiply, MSB first).
    pub fn pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        let mut acc = Self::ONE;
        for i in (0..exp.bits()).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc *= *self;
            }
        }
        acc
    }

    /// Granger–Scott squaring, valid **only** for elements of the
    /// cyclotomic subgroup (where `f^(p⁶+1) = f^(p⁶)·f = N(f) = 1`, i.e.
    /// unitary elements — everything after the easy part of the final
    /// exponentiation, hence all of `GT`). Roughly 3× cheaper than
    /// [`Fp12::square`]; equality with the generic squaring on unitary
    /// inputs is asserted by tests and debug assertions.
    pub fn cyclotomic_square(&self) -> Self {
        // Granger–Scott '09 compressed squaring over three Fp4 blocks:
        //   (z0, z1) ~ (c0.c0, c1.c1), (z2, z3) ~ (c1.c0, c0.c2),
        //   (z4, z5) ~ (c0.c1, c1.c2)
        fn fp4_square(a: Fp2, b: Fp2) -> (Fp2, Fp2) {
            let t0 = a.square();
            let t1 = b.square();
            let c0 = t1.mul_by_xi() + t0;
            let c1 = (a + b).square() - t0 - t1;
            (c0, c1)
        }

        let z0 = self.c0.c0;
        let z4 = self.c0.c1;
        let z3 = self.c0.c2;
        let z2 = self.c1.c0;
        let z1 = self.c1.c1;
        let z5 = self.c1.c2;

        let (t0, t1) = fp4_square(z0, z1);
        let z0 = (t0 - z0).double() + t0;
        let z1 = (t1 + z1).double() + t1;

        let (t0, t1) = fp4_square(z2, z3);
        let (t2, t3) = fp4_square(z4, z5);
        let z4 = (t0 - z4).double() + t0;
        let z5 = (t1 + z5).double() + t1;
        let t0 = t3.mul_by_xi();
        let z2 = (t0 + z2).double() + t0;
        let z3 = (t2 - z3).double() + t2;

        Self {
            c0: Fp6::new(z0, z4, z3),
            c1: Fp6::new(z2, z1, z5),
        }
    }

    /// Exponentiation for **unitary** elements using cyclotomic squarings.
    /// Callers must guarantee the element lies in the cyclotomic subgroup
    /// (`GT` elements and post-easy-part final-exponentiation values do).
    pub fn cyclotomic_pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        debug_assert_eq!(
            self.cyclotomic_square(),
            self.square(),
            "cyclotomic_pow requires a unitary element"
        );
        let mut acc = Self::ONE;
        for i in (0..exp.bits()).rev() {
            acc = acc.cyclotomic_square();
            if exp.bit(i) {
                acc *= *self;
            }
        }
        acc
    }

    /// The flat `Fp2` coefficient view `(w⁰, w², w⁴, w¹, w³, w⁵)`; helper for
    /// building sparse line elements and serialization.
    pub fn coefficients(&self) -> [Fp2; 6] {
        [
            self.c0.c0, self.c0.c1, self.c0.c2, self.c1.c0, self.c1.c1, self.c1.c2,
        ]
    }

    /// Serializes all twelve `Fp` coefficients (576 bytes). Only used to
    /// derive symmetric keys from `GT` elements, so the format just needs to
    /// be injective and deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(576);
        for c in self.coefficients() {
            out.extend_from_slice(&c.to_bytes());
        }
        out
    }
}

impl Add for Fp12 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fp12 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Neg for Fp12 {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl Mul for Fp12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // (a0 + a1 w)(b0 + b1 w) = a0b0 + a1b1·v + [(a0+a1)(b0+b1) - a0b0 - a1b1]·w
        let aa = self.c0 * rhs.c0;
        let bb = self.c1 * rhs.c1;
        let cross = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self {
            c0: aa + bb.mul_by_v(),
            c1: cross - aa - bb,
        }
    }
}

impl MulAssign for Fp12 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl core::fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp12({:?} + {:?}·w)", self.c0, self.c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    fn w() -> Fp12 {
        Fp12::new(Fp6::ZERO, Fp6::ONE)
    }

    #[test]
    fn w_squared_is_v() {
        let v = Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO);
        assert_eq!(w().square(), Fp12::new(v, Fp6::ZERO));
        assert_eq!(w() * w(), Fp12::new(v, Fp6::ZERO));
    }

    #[test]
    fn axioms() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fp12::random(&mut rng);
            let b = Fp12::random(&mut rng);
            let c = Fp12::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a * (b * c), (a * b) * c);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            assert_eq!(a * Fp12::ONE, a);
        }
    }

    #[test]
    fn inversion() {
        let mut rng = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut rng);
            if !a.is_zero() {
                assert_eq!(a * a.invert().unwrap(), Fp12::ONE);
            }
        }
        assert!(Fp12::ZERO.invert().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut rng = rng();
        let a = Fp12::random(&mut rng);
        let mut want = Fp12::ONE;
        for _ in 0..9 {
            want *= a;
        }
        assert_eq!(a.pow(&Uint::<1>::from_u64(9)), want);
    }

    #[test]
    fn conjugate_is_involution_and_multiplicative() {
        let mut rng = rng();
        let a = Fp12::random(&mut rng);
        let b = Fp12::random(&mut rng);
        assert_eq!(a.conjugate().conjugate(), a);
        assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
    }

    #[test]
    fn to_bytes_is_injective_on_samples() {
        let mut rng = rng();
        let a = Fp12::random(&mut rng);
        let b = Fp12::random(&mut rng);
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.to_bytes().len(), 576);
    }
}
