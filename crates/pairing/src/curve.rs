//! Generic short-Weierstrass group arithmetic shared by `G1` (over `Fp`)
//! and `G2` (over `Fp2`).
//!
//! Points are exposed in two shapes: [`Affine`] (for serialization, curve
//! membership checks and pairing inputs) and [`Projective`] (Jacobian
//! coordinates, for arithmetic). Both are generic over a [`Curve`] marker
//! type supplying the base field and curve constants.

use crate::fr::Scalar;
use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::{Add, Mul, Neg, Sub};

/// Operations the group arithmetic needs from a coordinate field.
///
/// Implemented by [`crate::fp::Fp`] and [`crate::fp2::Fp2`]. This trait is an
/// internal seam of the crate; it is public only because `Affine`/`Projective`
/// expose it in their bounds.
pub trait CurveField:
    Copy
    + PartialEq
    + Eq
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// True for the additive identity.
    fn is_zero(&self) -> bool;
    /// `self²`.
    fn square(&self) -> Self;
    /// `2·self`.
    fn double(&self) -> Self;
    /// Multiplicative inverse; `None` for zero.
    fn invert(&self) -> Option<Self>;
    /// Square root, if one exists.
    fn sqrt(&self) -> Option<Self>;
    /// Sign used to disambiguate `±y` in compressed encodings.
    fn is_lexicographically_largest(&self) -> bool;
    /// Canonical encoding length in bytes.
    fn encoded_len() -> usize;
    /// Canonical encoding appended to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Parses a canonical encoding of length [`CurveField::encoded_len`].
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl CurveField for crate::fp::Fp {
    fn zero() -> Self {
        Self::ZERO
    }
    fn one() -> Self {
        Self::ONE
    }
    fn is_zero(&self) -> bool {
        Self::is_zero(self)
    }
    fn square(&self) -> Self {
        Self::square(self)
    }
    fn double(&self) -> Self {
        Self::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Self::invert(self)
    }
    fn sqrt(&self) -> Option<Self> {
        Self::sqrt(self)
    }
    fn is_lexicographically_largest(&self) -> bool {
        Self::is_lexicographically_largest(self)
    }
    fn encoded_len() -> usize {
        Self::BYTES
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let arr: &[u8; 48] = bytes.try_into().ok()?;
        Self::from_bytes(arr)
    }
}

impl CurveField for crate::fp2::Fp2 {
    fn zero() -> Self {
        Self::ZERO
    }
    fn one() -> Self {
        Self::ONE
    }
    fn is_zero(&self) -> bool {
        Self::is_zero(self)
    }
    fn square(&self) -> Self {
        Self::square(self)
    }
    fn double(&self) -> Self {
        Self::double(self)
    }
    fn invert(&self) -> Option<Self> {
        Self::invert(self)
    }
    fn sqrt(&self) -> Option<Self> {
        Self::sqrt(self)
    }
    fn is_lexicographically_largest(&self) -> bool {
        Self::is_lexicographically_largest(self)
    }
    fn encoded_len() -> usize {
        Self::BYTES
    }
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let arr: &[u8; 96] = bytes.try_into().ok()?;
        Self::from_bytes(arr)
    }
}

/// Marker trait describing one concrete curve `y² = x³ + b`.
pub trait Curve: Copy + PartialEq + Eq + Debug + 'static {
    /// Coordinate field.
    type Base: CurveField;
    /// The constant `b` of the curve equation.
    fn b() -> Self::Base;
    /// Affine coordinates of the subgroup generator.
    fn generator_xy() -> (Self::Base, Self::Base);
    /// Human-readable group name for `Debug` output.
    fn name() -> &'static str;
    /// True iff the (on-curve) point lies in the prime-order subgroup.
    /// BLS curves check by annihilating with `r`; prime-order curves
    /// (cofactor 1, e.g. secp256k1) return true unconditionally.
    fn is_in_prime_subgroup(p: &Projective<Self>) -> bool {
        p.mul_uint(&crate::fr::MODULUS).is_identity()
    }
}

/// An affine point (or the point at infinity).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Affine<C: Curve> {
    /// x-coordinate (unspecified when `infinity`).
    pub x: C::Base,
    /// y-coordinate (unspecified when `infinity`).
    pub y: C::Base,
    /// True for the point at infinity.
    pub infinity: bool,
    _curve: PhantomData<C>,
}

/// A point in Jacobian projective coordinates `(X : Y : Z)`,
/// `x = X/Z²`, `y = Y/Z³`; infinity is `Z = 0`.
#[derive(Clone, Copy)]
pub struct Projective<C: Curve> {
    x: C::Base,
    y: C::Base,
    z: C::Base,
    _curve: PhantomData<C>,
}

impl<C: Curve> Affine<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Self {
            x: C::Base::zero(),
            y: C::Base::zero(),
            infinity: true,
            _curve: PhantomData,
        }
    }

    /// The subgroup generator.
    pub fn generator() -> Self {
        let (x, y) = C::generator_xy();
        Self {
            x,
            y,
            infinity: false,
            _curve: PhantomData,
        }
    }

    /// Constructs a point from coordinates **without** a curve check.
    /// Intended for internal use and tests; untrusted inputs should go
    /// through [`Affine::from_bytes`].
    pub fn from_xy_unchecked(x: C::Base, y: C::Base) -> Self {
        Self {
            x,
            y,
            infinity: false,
            _curve: PhantomData,
        }
    }

    /// True for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks `y² = x³ + b` (the point at infinity counts as on-curve).
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square() * self.x + C::b()
    }

    /// Checks that the point lies in the prime-order subgroup.
    pub fn is_in_subgroup(&self) -> bool {
        let p: Projective<C> = (*self).into();
        C::is_in_prime_subgroup(&p)
    }

    /// Compressed encoding: a flag byte (`0` infinity, `2`/`3` sign of y)
    /// followed by the x-coordinate.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + C::Base::encoded_len());
        if self.infinity {
            out.push(0);
            out.resize(1 + C::Base::encoded_len(), 0);
            return out;
        }
        out.push(if self.y.is_lexicographically_largest() {
            3
        } else {
            2
        });
        self.x.encode_into(&mut out);
        out
    }

    /// Parses a compressed encoding, enforcing the curve equation and
    /// (`r`-order) subgroup membership.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 1 + C::Base::encoded_len() {
            return None;
        }
        match bytes[0] {
            0 => {
                if bytes[1..].iter().all(|&b| b == 0) {
                    Some(Self::identity())
                } else {
                    None
                }
            }
            flag @ (2 | 3) => {
                let x = C::Base::decode(&bytes[1..])?;
                let y2 = x.square() * x + C::b();
                let mut y = y2.sqrt()?;
                if y.is_lexicographically_largest() != (flag == 3) {
                    y = -y;
                }
                let p = Self::from_xy_unchecked(x, y);
                if p.is_in_subgroup() {
                    Some(p)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Scalar multiplication (via projective arithmetic).
    pub fn mul_scalar(&self, s: &Scalar) -> Self {
        let p: Projective<C> = (*self).into();
        p.mul_scalar(s).to_affine()
    }
}

impl<C: Curve> Neg for Affine<C> {
    type Output = Self;
    fn neg(self) -> Self {
        if self.infinity {
            self
        } else {
            Self { y: -self.y, ..self }
        }
    }
}

impl<C: Curve> Debug for Affine<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.infinity {
            write!(f, "{}(infinity)", C::name())
        } else {
            write!(f, "{}({:?}, {:?})", C::name(), self.x, self.y)
        }
    }
}

impl<C: Curve> From<Affine<C>> for Projective<C> {
    fn from(a: Affine<C>) -> Self {
        if a.infinity {
            Projective::identity()
        } else {
            Projective {
                x: a.x,
                y: a.y,
                z: C::Base::one(),
                _curve: PhantomData,
            }
        }
    }
}

impl<C: Curve> Projective<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Self {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
            _curve: PhantomData,
        }
    }

    /// The subgroup generator.
    pub fn generator() -> Self {
        Affine::<C>::generator().into()
    }

    /// True for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (Jacobian, `a = 0` formulas).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        // dbl-2009-l: A = X², B = Y², C = B², D = 2((X+B)² − A − C),
        // E = 3A, F = E², X3 = F − 2D, Y3 = E(D − X3) − 8C, Z3 = 2YZ
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let eight_c = c.double().double().double();
        let y3 = e * (d - x3) - eight_c;
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
            _curve: PhantomData,
        }
    }

    /// General point addition (Jacobian add-2007-bl).
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * rhs.z * z2z2;
        let s2 = rhs.y * self.z * z1z1;
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Self::identity()
            };
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
            _curve: PhantomData,
        }
    }

    /// Scalar multiplication by a canonical multi-limb integer
    /// (double-and-add, MSB first).
    pub fn mul_uint<const E: usize>(&self, k: &ibbe_bigint::Uint<E>) -> Self {
        let mut acc = Self::identity();
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = Projective::add(&acc, self);
            }
        }
        acc
    }

    /// Scalar multiplication by a field scalar.
    pub fn mul_scalar(&self, s: &Scalar) -> Self {
        self.mul_uint(&s.to_uint())
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.invert().expect("nonzero z");
        let zinv2 = zinv.square();
        Affine::from_xy_unchecked(self.x * zinv2, self.y * zinv2 * zinv)
    }

    /// Uniformly random subgroup element (generator times random scalar).
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul_scalar(&Scalar::random_nonzero(rng))
    }
}

impl<C: Curve> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        // (X1, Y1, Z1) == (X2, Y2, Z2) iff X1 Z2² == X2 Z1² and Y1 Z2³ == Y2 Z1³
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}

impl<C: Curve> Eq for Projective<C> {}

impl<C: Curve> Add for Projective<C> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}

impl<C: Curve> Sub for Projective<C> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Projective::add(&self, &(-rhs))
    }
}

impl<C: Curve> Neg for Projective<C> {
    type Output = Self;
    fn neg(self) -> Self {
        Self { y: -self.y, ..self }
    }
}

impl<C: Curve> Debug for Projective<C> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        Debug::fmt(&self.to_affine(), f)
    }
}

impl<C: Curve> Default for Projective<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: Curve> Default for Affine<C> {
    fn default() -> Self {
        Self::identity()
    }
}
