//! The group `G2 = E'(Fp2)[r]` with the sextic twist `E': y² = x³ + 4(u+1)`.

use crate::curve::{Affine, Curve, Projective};
use crate::fp::Fp;
use crate::fp2::Fp2;
use ibbe_bigint::Uint;

/// Marker type for the `G2` curve parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct G2Params;

const GEN_X_C0: Uint<6> = Uint::new([
    0xd480_56c8_c121_bdb8,
    0x0bac_0326_a805_bbef,
    0xb451_0b64_7ae3_d177,
    0xc6e4_7ad4_fa40_3b02,
    0x2608_0527_2dc5_1051,
    0x024a_a2b2_f08f_0a91,
]);
const GEN_X_C1: Uint<6> = Uint::new([
    0xe5ac_7d05_5d04_2b7e,
    0x334c_f112_1394_5d57,
    0xb5da_61bb_dc7f_5049,
    0x596b_d0d0_9920_b61a,
    0x7dac_d3a0_8827_4f65,
    0x13e0_2b60_5271_9f60,
]);
const GEN_Y_C0: Uint<6> = Uint::new([
    0xe193_5486_08b8_2801,
    0x923a_c9cc_3bac_a289,
    0x6d42_9a69_5160_d12c,
    0xadfd_9baa_8cbd_d3a7,
    0x8cc9_cdc6_da2e_351a,
    0x0ce5_d527_727d_6e11,
]);
const GEN_Y_C1: Uint<6> = Uint::new([
    0xaaa9_075f_f05f_79be,
    0x3f37_0d27_5cec_1da1,
    0x2674_92ab_572e_99ab,
    0xcb3e_287e_85a7_63af,
    0x32ac_d2b0_2bc2_8b99,
    0x0606_c4a0_2ea7_34cc,
]);

fn fp(u: &Uint<6>) -> Fp {
    Fp::from_uint(u).expect("generator coordinate is canonical")
}

impl Curve for G2Params {
    type Base = Fp2;

    fn b() -> Fp2 {
        // 4(u + 1)
        Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
    }

    fn generator_xy() -> (Fp2, Fp2) {
        (
            Fp2::new(fp(&GEN_X_C0), fp(&GEN_X_C1)),
            Fp2::new(fp(&GEN_Y_C0), fp(&GEN_Y_C1)),
        )
    }

    fn name() -> &'static str {
        "G2"
    }
}

/// An affine `G2` point. Compressed encoding is 97 bytes.
pub type G2Affine = Affine<G2Params>;

/// A Jacobian-projective `G2` point.
pub type G2Projective = Projective<G2Params>;

/// Compressed `G2` encoding length in bytes (flag byte + x-coordinate).
pub const G2_COMPRESSED_BYTES: usize = 97;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fr::Scalar;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(23)
    }

    #[test]
    fn generator_is_on_curve_and_in_subgroup() {
        let g = G2Affine::generator();
        assert!(g.is_on_curve());
        assert!(g.is_in_subgroup());
    }

    #[test]
    fn group_laws() {
        let mut rng = rng();
        let p = G2Projective::random(&mut rng);
        let q = G2Projective::random(&mut rng);
        assert_eq!(p + q, q + p);
        assert_eq!(p.double(), p + p);
        assert_eq!(p - p, G2Projective::identity());
    }

    #[test]
    fn scalar_mul_composes() {
        let mut rng = rng();
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        let g = G2Projective::generator();
        assert_eq!(g.mul_scalar(&a).mul_scalar(&b), g.mul_scalar(&(a * b)));
    }

    #[test]
    fn compressed_serialization_roundtrip() {
        let mut rng = rng();
        let p = G2Projective::random(&mut rng).to_affine();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), G2_COMPRESSED_BYTES);
        assert_eq!(G2Affine::from_bytes(&bytes).unwrap(), p);
        let id = G2Affine::identity();
        assert_eq!(G2Affine::from_bytes(&id.to_bytes()).unwrap(), id);
    }

    #[test]
    fn serialization_rejects_wrong_subgroup() {
        // A point on the twist with the right x but outside the r-subgroup
        // cannot be produced by from_bytes; emulate by checking a torsion
        // point: take x = 0 and see whether decoding either fails or yields
        // a subgroup point.
        let mut candidate = vec![2u8];
        candidate.extend_from_slice(&[0u8; 96]);
        if let Some(p) = G2Affine::from_bytes(&candidate) {
            assert!(p.is_in_subgroup());
        }
    }
}
