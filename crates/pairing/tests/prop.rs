//! Property-based tests of the algebraic laws the IBBE constructions rely
//! on: field axioms across the tower, group laws, and pairing bilinearity.

use ibbe_pairing::{
    hash_to_scalar, pairing, Fp, Fp12, Fp2, G1Projective, G2Projective, Gt, Scalar,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn scalar(seed: u64) -> Scalar {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Scalar::random_nonzero(&mut rng)
}

fn fp(seed: u64) -> Fp {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Fp::random(&mut rng)
}

fn fp2(seed: u64) -> Fp2 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Fp2::random(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fp_field_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (fp(a), fp(b), fp(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a - a, Fp::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert().unwrap(), Fp::ONE);
        }
    }

    #[test]
    fn fp2_axioms_and_frobenius(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (fp2(a), fp2(b));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a.square(), a * a);
        // conjugation is the p-power Frobenius: multiplicative
        prop_assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
        // norm is multiplicative
        prop_assert_eq!((a * b).norm(), a.norm() * b.norm());
    }

    #[test]
    fn scalar_inverse_and_distribution(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (scalar(a), scalar(b));
        prop_assert_eq!((a * b) * b.invert().unwrap(), a);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn g1_group_laws(a in any::<u64>(), b in any::<u64>()) {
        let p = G1Projective::generator().mul_scalar(&scalar(a));
        let q = G1Projective::generator().mul_scalar(&scalar(b));
        prop_assert_eq!(p + q, q + p);
        prop_assert_eq!(p.double(), p + p);
        prop_assert!((p - p).is_identity());
        // scalar-mul is a homomorphism Z_r → G1
        let (sa, sb) = (scalar(a), scalar(b));
        let lhs = G1Projective::generator().mul_scalar(&(sa + sb));
        prop_assert_eq!(lhs, p + q);
    }

    #[test]
    fn g2_scalar_mul_homomorphism(a in any::<u64>(), b in any::<u64>()) {
        let (sa, sb) = (scalar(a), scalar(b));
        let lhs = G2Projective::generator().mul_scalar(&(sa * sb));
        let rhs = G2Projective::generator().mul_scalar(&sa).mul_scalar(&sb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_bilinearity(a in any::<u64>(), b in any::<u64>()) {
        let (sa, sb) = (scalar(a), scalar(b));
        let p = G1Projective::generator().mul_scalar(&sa).to_affine();
        let q = G2Projective::generator().mul_scalar(&sb).to_affine();
        let base = pairing(
            &G1Projective::generator().to_affine(),
            &G2Projective::generator().to_affine(),
        );
        prop_assert_eq!(pairing(&p, &q), base.pow(&(sa * sb)));
    }

    #[test]
    fn gt_is_a_group(a in any::<u64>(), b in any::<u64>()) {
        let base = pairing(
            &G1Projective::generator().to_affine(),
            &G2Projective::generator().to_affine(),
        );
        let (sa, sb) = (scalar(a), scalar(b));
        let x = base.pow(&sa);
        let y = base.pow(&sb);
        prop_assert_eq!(x * y, base.pow(&(sa + sb)));
        prop_assert_eq!(x * x.invert(), Gt::IDENTITY);
    }

    #[test]
    fn point_serialization_roundtrips(a in any::<u64>()) {
        let s = scalar(a);
        let p = G1Projective::generator().mul_scalar(&s).to_affine();
        let q = G2Projective::generator().mul_scalar(&s).to_affine();
        prop_assert_eq!(ibbe_pairing::G1Affine::from_bytes(&p.to_bytes()).unwrap(), p);
        prop_assert_eq!(ibbe_pairing::G2Affine::from_bytes(&q.to_bytes()).unwrap(), q);
    }

    #[test]
    fn fp12_inversion(a in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(a);
        let x = Fp12::random(&mut rng);
        if !x.is_zero() {
            prop_assert_eq!(x * x.invert().unwrap(), Fp12::ONE);
        }
    }

    #[test]
    fn hash_to_scalar_no_collisions_on_distinct_inputs(a: u64, b: u64) {
        prop_assume!(a != b);
        prop_assert_ne!(
            hash_to_scalar(b"d", &a.to_be_bytes()),
            hash_to_scalar(b"d", &b.to_be_bytes())
        );
    }
}
