//! Integration tests of the envelope-encrypted data plane: the acceptance
//! criterion (a revoking batch performs zero object re-writes in lazy mode
//! and the sweeper converges every stale object within the configured
//! deadline; eager pays O(n) synchronously), CAS writer safety, long-poll
//! cache invalidation, and revoked-reader lockout.

use acs::Admin;
use cloud_store::CloudStore;
use dataplane::{
    ClientSession, DataError, ReencryptionPolicy, RevocationCoordinator, SweepConfig, Sweeper,
};
use ibbe_sgx_core::{GroupEngine, MembershipBatch, PartitionSize};
use std::time::Duration;

fn seeded_admin(seed: u64, partition: usize, store: CloudStore) -> Admin {
    let mut seed_bytes = [0u8; 32];
    seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
    let engine =
        GroupEngine::bootstrap_seeded(PartitionSize::new(partition).unwrap(), seed_bytes).unwrap();
    Admin::new(engine, store)
}

fn session(
    admin: &Admin,
    store: &CloudStore,
    group: &str,
    identity: &str,
    seed: u64,
) -> ClientSession {
    ClientSession::with_seed(
        identity,
        admin.engine().extract_user_key(identity).unwrap(),
        admin.engine().public_key().clone(),
        store.clone(),
        group,
        seed,
    )
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("u{i}")).collect()
}

/// Builds a deployment with `objects` stored objects written by `writer`.
fn deployment(seed: u64, objects: usize) -> (Admin, CloudStore, ClientSession, Sweeper) {
    let store = CloudStore::new();
    let admin = seeded_admin(seed, 3, store.clone());
    let mut members = names(6);
    members.push("writer".into());
    members.push("sweeper".into());
    admin.create_group("g", members).unwrap();
    let mut writer = session(&admin, &store, "g", "writer", 100 + seed);
    for i in 0..objects {
        writer
            .write(&format!("obj-{i:03}"), format!("payload {i}").as_bytes())
            .unwrap();
    }
    let sweeper = Sweeper::new(
        session(&admin, &store, "g", "sweeper", 200 + seed),
        SweepConfig {
            deadline: Duration::from_secs(5),
            max_per_tick: 4,
        },
    );
    (admin, store, writer, sweeper)
}

/// THE acceptance criterion: lazy revocation is O(1) in the number of
/// stored objects — zero object re-writes at revocation time — and the
/// sweeper then converges every stale object to the current epoch within
/// the configured deadline.
#[test]
fn lazy_revocation_rewrites_nothing_and_sweeper_converges_within_deadline() {
    let n = 12;
    let (admin, store, mut writer, mut sweeper) = deployment(1, n);
    let before = store.metrics();

    let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Lazy);
    let mut batch = MembershipBatch::new();
    batch.remove("u0").remove("u3");
    let outcome = coordinator.revoke("g", &batch, &mut sweeper).unwrap();
    assert!(outcome.batch.gk_rotated);
    assert_eq!(outcome.batch.epoch, 2);
    assert!(outcome.sweep.is_none(), "lazy defers all data-plane work");

    // zero object re-writes at revocation time: no CAS traffic beyond the
    // initial writes, no sweeper migrations
    let after = store.metrics();
    assert_eq!(
        after.cas_puts - before.cas_puts,
        0,
        "a lazy revoking batch must not touch stored objects"
    );
    assert_eq!(sweeper.metrics().migrations, 0);
    assert_eq!(writer.metrics().writes as usize, n);

    // every object is still at epoch 1 (stale)
    for i in 0..n {
        let (sealed, _) = writer.fetch(&format!("obj-{i:03}")).unwrap();
        assert_eq!(sealed.epoch, 1);
    }

    // the sweeper converges all n objects within its deadline, in
    // max_per_tick increments
    let report = sweeper.run_until_converged().unwrap();
    assert!(report.converged, "sweep must converge: {report:?}");
    assert!(
        report.elapsed <= sweeper.config().deadline,
        "convergence blew the deadline: {report:?}"
    );
    assert_eq!(report.migrated, n);
    assert_eq!(sweeper.metrics().migrations as usize, n);
    for i in 0..n {
        let (sealed, _) = writer.fetch(&format!("obj-{i:03}")).unwrap();
        assert_eq!(sealed.epoch, 2, "every object migrated to the new epoch");
    }

    // survivors read everything after migration
    let mut reader = session(&admin, &store, "g", "u1", 9);
    assert_eq!(reader.read("obj-000").unwrap(), b"payload 0");
}

/// The eager policy pays the O(n) sweep synchronously inside the
/// revocation, leaving nothing stale.
#[test]
fn eager_revocation_sweeps_everything_synchronously() {
    let n = 9;
    let (admin, store, mut writer, mut sweeper) = deployment(2, n);
    let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Eager);
    let mut batch = MembershipBatch::new();
    batch.remove("u2");
    let outcome = coordinator.revoke("g", &batch, &mut sweeper).unwrap();
    let sweep = outcome.sweep.expect("eager sweeps at revocation time");
    assert!(sweep.converged);
    assert_eq!(sweep.migrated, n, "eager cost is O(n) at revocation time");
    for i in 0..n {
        let (sealed, _) = writer.fetch(&format!("obj-{i:03}")).unwrap();
        assert_eq!(sealed.epoch, 2);
    }
    let _ = store;
}

/// Pure-add batches rotate nothing, so neither policy touches the data
/// plane.
#[test]
fn additive_batches_trigger_no_sweep_under_either_policy() {
    for policy in [ReencryptionPolicy::Lazy, ReencryptionPolicy::Eager] {
        let (admin, _store, mut writer, mut sweeper) = deployment(3, 4);
        let coordinator = RevocationCoordinator::new(&admin, policy);
        let mut batch = MembershipBatch::new();
        batch.add("newcomer");
        let outcome = coordinator.revoke("g", &batch, &mut sweeper).unwrap();
        assert!(!outcome.batch.gk_rotated);
        assert!(outcome.sweep.is_none());
        let (sealed, _) = writer.fetch("obj-000").unwrap();
        assert_eq!(sealed.epoch, 1);
    }
}

/// A write after a rotation lands at the new epoch (the lazy "migrate on
/// next write" path), while untouched objects stay stale until swept.
#[test]
fn writes_after_rotation_reseal_at_the_new_epoch() {
    let (admin, _store, mut writer, mut sweeper) = deployment(4, 3);
    let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Lazy);
    let mut batch = MembershipBatch::new();
    batch.remove("u5");
    coordinator.revoke("g", &batch, &mut sweeper).unwrap();

    writer.write("obj-000", b"rewritten").unwrap();
    let (hot, _) = writer.fetch("obj-000").unwrap();
    assert_eq!(hot.epoch, 2, "next write migrates the object");
    let (cold, _) = writer.fetch("obj-001").unwrap();
    assert_eq!(cold.epoch, 1, "cold objects await the sweeper");

    // the migrated-on-write object is skipped by the sweep; the cold ones
    // are picked up
    let report = sweeper.run_until_converged().unwrap();
    assert!(report.converged);
    assert_eq!(report.migrated, 2);
    assert_eq!(writer.metrics().old_epoch_reads, 0);
    // reading the cold object before... (it is now migrated) — read both
    assert_eq!(writer.read("obj-000").unwrap(), b"rewritten");
    assert_eq!(writer.read("obj-001").unwrap(), b"payload 1");
}

/// The revoked-member lockout ladder: new-epoch objects are unreadable
/// immediately; old-epoch objects remain exposed only until the sweeper
/// migrates them.
#[test]
fn revoked_member_lockout_is_immediate_for_new_data_and_post_sweep_for_old() {
    let (admin, store, mut writer, mut sweeper) = deployment(5, 5);
    // the victim syncs a session (and thus a key ring) while still a member
    let mut victim = session(&admin, &store, "g", "u4", 77);
    assert_eq!(victim.read("obj-000").unwrap(), b"payload 0");

    let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Lazy);
    let mut batch = MembershipBatch::new();
    batch.remove("u4");
    coordinator.revoke("g", &batch, &mut sweeper).unwrap();

    // the lazy window: pre-revocation objects are still readable with the
    // victim's cached epoch-1 key
    assert_eq!(victim.read("obj-001").unwrap(), b"payload 1");
    assert_eq!(
        victim.metrics().old_epoch_reads,
        0,
        "ring is frozen at epoch 1"
    );

    // anything written at the new epoch is opaque to the victim, now and
    // forever
    writer.write("fresh", b"post-revocation secret").unwrap();
    assert_eq!(victim.read("fresh"), Err(DataError::UnknownEpoch(2)));

    // the sweeper closes the window: every old object moves to epoch 2
    let report = sweeper.run_until_converged().unwrap();
    assert!(report.converged);
    for i in 0..5 {
        assert_eq!(
            victim.read(&format!("obj-{i:03}")),
            Err(DataError::UnknownEpoch(2)),
            "migrated object must lock the revoked member out"
        );
    }
    // while a surviving member still reads everything
    let mut survivor = session(&admin, &store, "g", "u1", 78);
    assert_eq!(survivor.read("obj-004").unwrap(), b"payload 4");
    assert_eq!(survivor.read("fresh").unwrap(), b"post-revocation secret");
}

/// Concurrent writers: CAS makes the race safe — one wins, the loser gets
/// `Conflict`, re-reads, and retries cleanly.
#[test]
fn concurrent_writers_are_serialized_by_cas() {
    let store = CloudStore::new();
    let admin = seeded_admin(6, 3, store.clone());
    admin
        .create_group("g", vec!["a".into(), "b".into(), "c".into()])
        .unwrap();
    let mut wa = session(&admin, &store, "g", "a", 1);
    let mut wb = session(&admin, &store, "g", "b", 2);

    wa.write("doc", b"version 1").unwrap();
    // both sessions observe version 1
    wb.read("doc").unwrap();
    wa.write("doc", b"a's version 2").unwrap();
    // b's expectation is stale now
    let err = wb.write("doc", b"b's version 2").unwrap_err();
    assert!(matches!(err, DataError::Conflict(_)), "got {err:?}");
    assert_eq!(wb.metrics().write_conflicts, 1);
    // re-read → adopt the new version → retry succeeds
    assert_eq!(wb.read("doc").unwrap(), b"a's version 2");
    wb.write("doc", b"b's version 3").unwrap();
    assert_eq!(wa.read("doc").unwrap(), b"b's version 3");
    let m = store.metrics();
    assert_eq!(m.cas_conflicts, 1);
    assert_eq!(m.cas_puts, 3, "three successful writes, one rejection");
}

/// The sweeper's CAS loses gracefully to a concurrent writer: the winner
/// already sealed at the current epoch, so convergence still holds.
#[test]
fn sweeper_yields_to_concurrent_writers() {
    let (admin, _store, mut writer, mut sweeper) = deployment(7, 2);
    let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Lazy);
    let mut batch = MembershipBatch::new();
    batch.remove("u1");
    coordinator.revoke("g", &batch, &mut sweeper).unwrap();

    // a writer migrates obj-000 (by rewriting it) between the revocation
    // and the sweep
    writer.write("obj-000", b"rewritten concurrently").unwrap();
    let report = sweeper.run_until_converged().unwrap();
    assert!(report.converged);
    assert_eq!(
        report.migrated, 1,
        "only the cold object needed the sweeper"
    );
    assert_eq!(writer.read("obj-000").unwrap(), b"rewritten concurrently");
}

/// Long-poll cache invalidation: a blocked `watch` wakes on the revocation
/// and rebuilds the ring at the new epoch.
#[test]
fn long_poll_invalidation_rebuilds_the_ring() {
    let (admin, store, _writer, mut sweeper) = deployment(8, 2);
    let mut reader = session(&admin, &store, "g", "u2", 11);
    reader.refresh().unwrap();
    assert_eq!(reader.current_epoch(), Some(1));

    let admin_thread = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Lazy);
        let mut batch = MembershipBatch::new();
        batch.remove("u0");
        coordinator.revoke("g", &batch, &mut sweeper).unwrap();
        admin
    });
    let refreshed = reader.watch(Duration::from_secs(5)).unwrap();
    assert!(refreshed, "the rotation must wake the watcher");
    assert_eq!(reader.current_epoch(), Some(2));
    assert_eq!(
        reader.ring_len(),
        2,
        "new ring holds epoch 2 plus retired epoch 1"
    );
    let _ = admin_thread.join().unwrap();
}

/// A background sweeper thread driven purely by `watch` converges the
/// store after a revocation it was not told about.
#[test]
fn watch_driven_sweeper_converges_in_background() {
    let (admin, store, mut writer, mut sweeper) = deployment(9, 6);
    // arm the sweeper's poll cursor before the revocation so the wake is
    // guaranteed regardless of thread scheduling
    let armed = sweeper.tick().unwrap();
    assert!(armed.converged && armed.stale == 0, "nothing stale yet");
    let handle = std::thread::spawn(move || {
        // one long-poll cycle: wake on the rotation, then converge
        sweeper.watch(Duration::from_secs(5)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(30));
    // a lazy revocation is pure control plane — apply the batch directly,
    // exactly what RevocationCoordinator does under the lazy policy
    let mut batch = MembershipBatch::new();
    batch.remove("u3");
    admin.apply_batch("g", &batch).unwrap();
    let report = handle.join().unwrap().expect("watch saw the rotation");
    assert!(report.converged);
    assert_eq!(report.migrated, 6);
    for i in 0..6 {
        let (sealed, _) = writer.fetch(&format!("obj-{i:03}")).unwrap();
        assert_eq!(sealed.epoch, 2);
    }
    let _ = store;
}

/// Tampered objects fail closed.
#[test]
fn tampered_object_fails_closed() {
    let (_admin, store, mut writer, _sweeper) = deployment(10, 1);
    let folder = dataplane::data_folder("g");
    let (bytes, _) = store.get(&folder, "obj-000").unwrap();
    let mut forged = bytes.to_vec();
    let n = forged.len();
    forged[n - 1] ^= 0x01;
    store.put(&folder, "obj-000", forged);
    assert_eq!(writer.read("obj-000"), Err(DataError::AuthFailed));
    // object under a different name: AAD binding rejects a rename
    store.put(&folder, "renamed", bytes);
    assert_eq!(writer.read("renamed"), Err(DataError::AuthFailed));
}

/// A forked op-log fails the data plane closed: the session's freshness
/// check surfaces the verification evidence instead of silently reading
/// (or writing) under state derived from a rewritten history. Only
/// `NotAMember` is ridden out by `maybe_refresh`; evidence is not.
#[test]
fn forked_oplog_fails_the_session_closed() {
    use acs::{AdminSigner, ForkingStore, Tamper};
    use rand::SeedableRng;

    let store = CloudStore::new();
    let mut r = rand::rngs::StdRng::seed_from_u64(11);
    let signer = AdminSigner::new("admin-1", &mut r);
    let admin = seeded_admin(11, 3, store.clone()).with_signer(signer);
    admin.create_group("g", names(4)).unwrap();

    // the reader watches the group through an (initially honest) view the
    // adversary controls; the admin writes to the real store
    let forked = ForkingStore::new(store.clone());
    let mut reader = ClientSession::with_seed(
        "u0",
        admin.engine().extract_user_key("u0").unwrap(),
        admin.engine().public_key().clone(),
        forked.clone(),
        "g",
        311,
    );
    let mut writer = session(&admin, &store, "g", "u1", 312);
    writer.write("obj", b"payload").unwrap();
    assert_eq!(reader.read("obj").unwrap(), b"payload");

    // the group moves on; the view rewrites the history the reader pinned
    admin.add_user("g", "u9").unwrap();
    forked
        .tamper("g", Tamper::RewriteEntry { index: 0 })
        .unwrap();

    let err = reader.read("obj").unwrap_err();
    assert!(
        matches!(&err, DataError::Acs(acs::AcsError::Verify(_))),
        "expected fail-closed verification evidence, got {err:?}"
    );
    assert!(
        !err.is_transient(),
        "evidence must not be retried away like an outage"
    );

    // the attack ends: the honest history checks out and reads resume
    forked.heal("g");
    assert_eq!(reader.read("obj").unwrap(), b"payload");
}
