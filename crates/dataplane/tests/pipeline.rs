//! [`PipelinedSession`] suite: observational equivalence with the serial
//! session.
//!
//! * window = 1 degenerates to exactly serial semantics — the same data
//!   requests, in the same order, verified through a recording store;
//! * queued writes coalesce last-write-wins and reads see them in
//!   program order;
//! * a lost CAS on a coalesced write retries with the surviving payload;
//! * an epoch rotation observed mid-window drains it, queued writes seal
//!   under the new ring, and revoked members stay locked out of them;
//! * the window genuinely overlaps store latency;
//! * serial and pipelined replays of the same random trace observe
//!   byte-identical plaintexts at every read (proptest).

use acs::FleetFixture;
use bytes::Bytes;
use cloud_store::{
    CloudStore, LatencyModel, MetricsSnapshot, ObjectStore, PollResult, Request, RequestOp,
    StoreError, StoreHandle, StoreTicket,
};
use dataplane::fixtures::{fleet_session, fleet_session_on};
use dataplane::{PipelinedSession, RwSystemBackend, RwSystemConfig};
use ibbe_sgx_core::{MembershipBatch, PartitionSize};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use workloads::rw::object_name;
use workloads::{generate_read_write, replay_events, RwTraceConfig};

const WRITER: &str = "writer";
const GROUP: &str = "g0";

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|c| (c / 8).max(4))
        .unwrap_or(4)
}

/// One group of two plain members plus the writer service identity.
fn fixture_over(store: impl Into<StoreHandle>, seed: u64) -> FleetFixture {
    FleetFixture::new(
        store,
        PartitionSize::new(2).unwrap(),
        &[(GROUP.to_string(), vec!["u0".into(), "u1".into()])],
        &[WRITER.to_string()],
        seed,
    )
    .unwrap()
}

/// An [`ObjectStore`] wrapper logging every data request — blocking and
/// submitted alike — as `(kind, folder, item)`, normalized so a serial
/// session's `try_*` calls and a pipelined session's submissions compare
/// directly.
#[derive(Clone)]
struct RecordingStore {
    inner: StoreHandle,
    log: Arc<Mutex<Vec<(String, String, String)>>>,
}

impl RecordingStore {
    fn new(inner: impl Into<StoreHandle>) -> Self {
        Self {
            inner: inner.into(),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn record(&self, kind: &str, folder: &str, item: &str) {
        self.log
            .lock()
            .unwrap()
            .push((kind.to_string(), folder.to_string(), item.to_string()));
    }

    /// Data-object requests only; metadata traffic (key rings, epoch
    /// history) is not part of the equivalence claim.
    fn data_ops(&self) -> Vec<(String, String, String)> {
        self.log
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, _, item)| item.starts_with("obj-"))
            .cloned()
            .collect()
    }
}

impl ObjectStore for RecordingStore {
    // Only the data-plane verbs under test record; the rest forward. With
    // the fallible surface as the trait's single required surface, the
    // recorder implements one set of verbs instead of a dual impl.

    fn try_put(&self, folder: &str, item: &str, data: Bytes) -> Result<u64, StoreError> {
        self.inner.try_put(folder, item, data)
    }

    fn try_put_if_version(
        &self,
        folder: &str,
        item: &str,
        data: Bytes,
        expected: u64,
    ) -> Result<u64, StoreError> {
        self.record("cas", folder, item);
        self.inner.try_put_if_version(folder, item, data, expected)
    }

    fn try_put_many(&self, folder: &str, items: Vec<(String, Bytes)>) -> Result<u64, StoreError> {
        self.inner.try_put_many(folder, items)
    }

    fn try_get(&self, folder: &str, item: &str) -> Result<Option<(Bytes, u64)>, StoreError> {
        self.record("get", folder, item);
        self.inner.try_get(folder, item)
    }

    fn try_delete(&self, folder: &str, item: &str) -> Result<bool, StoreError> {
        self.inner.try_delete(folder, item)
    }

    fn try_list(&self, folder: &str) -> Result<Vec<String>, StoreError> {
        self.inner.try_list(folder)
    }

    fn try_list_folders(&self) -> Result<Vec<String>, StoreError> {
        self.inner.try_list_folders()
    }

    fn try_folder_version(&self, folder: &str) -> Result<u64, StoreError> {
        self.inner.try_folder_version(folder)
    }

    fn try_long_poll(
        &self,
        folder: &str,
        since: u64,
        timeout: Duration,
    ) -> Result<PollResult, StoreError> {
        self.inner.try_long_poll(folder, since, timeout)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    fn submit(&self, request: Request) -> StoreTicket {
        let kind = match request.op {
            RequestOp::Get => "get",
            RequestOp::PutIfVersion { .. } => "cas",
            RequestOp::Put(_) => "put",
            RequestOp::Delete => "delete",
        };
        self.record(kind, &request.folder, &request.item);
        self.inner.submit(request)
    }
}

/// The mixed op sequence both deployments replay in the window=1 test:
/// rewrites, read-after-write, interleaved objects.
fn mixed_ops() -> Vec<(&'static str, &'static str)> {
    vec![
        ("w", "obj-a"),
        ("w", "obj-b"),
        ("r", "obj-a"),
        ("w", "obj-a"),
        ("w", "obj-c"),
        ("r", "obj-c"),
        ("r", "obj-b"),
        ("w", "obj-b"),
        ("r", "obj-a"),
    ]
}

#[test]
fn window_one_replays_the_serial_request_trace_exactly() {
    let run = |pipelined: bool| {
        let base = CloudStore::new();
        let fixture = fixture_over(base.clone(), 7);
        let recorder = RecordingStore::new(base);
        let session = fleet_session_on(
            &fixture,
            StoreHandle::new(recorder.clone()),
            WRITER,
            GROUP,
            1,
            0x11,
        );
        let mut reads = Vec::new();
        if pipelined {
            let mut p = PipelinedSession::new(session, 1);
            for (i, (op, object)) in mixed_ops().iter().enumerate() {
                match *op {
                    "w" => p.write(object, format!("payload-{i}").as_bytes()).unwrap(),
                    _ => reads.push(p.read(object).unwrap()),
                }
            }
            p.flush().unwrap();
        } else {
            let mut s = session;
            for (i, (op, object)) in mixed_ops().iter().enumerate() {
                match *op {
                    "w" => {
                        s.write(object, format!("payload-{i}").as_bytes()).unwrap();
                    }
                    _ => reads.push(s.read(object).unwrap()),
                }
            }
        }
        (recorder.data_ops(), reads)
    };

    let (serial_ops, serial_reads) = run(false);
    let (pipelined_ops, pipelined_reads) = run(true);
    assert_eq!(
        serial_reads, pipelined_reads,
        "observed plaintexts diverged"
    );
    assert_eq!(
        serial_ops, pipelined_ops,
        "window=1 must issue exactly the serial request trace"
    );
}

#[test]
fn queued_writes_coalesce_and_reads_see_them_in_program_order() {
    let latency = LatencyModel::new(Duration::from_millis(25), Duration::ZERO);
    let fixture = fixture_over(CloudStore::with_latency(latency), 3);
    let session = fleet_session(&fixture, WRITER, GROUP, 1, 0x22);
    let mut p = PipelinedSession::new(session, 2);

    p.write("obj-a", b"a1").unwrap();
    p.write("obj-b", b"b1").unwrap(); // window full: both in flight
    p.write("obj-c", b"c1").unwrap(); // queued behind the window
    p.write("obj-c", b"c2").unwrap(); // coalesced, last write wins
    assert!(p.queued_writes() >= 1, "obj-c should still be queued");
    assert_eq!(
        p.read("obj-c").unwrap(),
        b"c2",
        "a read of a queued write returns its payload in program order"
    );
    p.flush().unwrap();

    let m = p.metrics();
    assert_eq!(m.coalesced_writes, 1);
    assert_eq!(m.writes, 3, "obj-c went out once despite two write() calls");
    assert_eq!(p.session_mut().read("obj-c").unwrap(), b"c2");
}

#[test]
fn a_conflicted_coalesced_write_retries_with_the_surviving_payload() {
    let latency = LatencyModel::new(Duration::from_millis(25), Duration::ZERO);
    let fixture = fixture_over(CloudStore::with_latency(latency), 5);

    // an external writer creates obj-y first, so the pipelined session's
    // CAS expectation (0 = "must not exist") is doomed to conflict
    let mut external = fleet_session(&fixture, "u0", GROUP, 1, 0x33);
    external.write("obj-y", b"external").unwrap();

    let session = fleet_session(&fixture, WRITER, GROUP, 1, 0x44);
    let mut p = PipelinedSession::new(session, 2);
    p.write("obj-a", b"a1").unwrap();
    p.write("obj-b", b"b1").unwrap(); // window full
    p.write("obj-y", b"y1").unwrap(); // queued
    p.write("obj-y", b"y2").unwrap(); // coalesced: y2 is the survivor
    p.flush().unwrap();

    let m = p.metrics();
    assert_eq!(m.coalesced_writes, 1);
    assert!(
        m.write_conflicts >= 1,
        "the stale expectation must have lost its CAS"
    );
    assert_eq!(
        p.session_mut().read("obj-y").unwrap(),
        b"y2",
        "the retry carried the surviving (coalesced) payload"
    );
}

#[test]
fn a_rotation_observed_mid_window_reseals_queued_writes_under_the_new_epoch() {
    let latency = LatencyModel::new(Duration::from_millis(25), Duration::ZERO);
    let fixture = fixture_over(CloudStore::with_latency(latency), 9);

    // the soon-revoked member opens its session (and ring) pre-rotation
    let mut revoked = fleet_session(&fixture, "u1", GROUP, 1, 0x55);
    revoked.refresh().unwrap();

    let session = fleet_session(&fixture, WRITER, GROUP, 1, 0x66);
    let mut p = PipelinedSession::new(session, 2);
    p.write("obj-0", b"old-0").unwrap();
    p.write("obj-1", b"old-1").unwrap(); // window full, both sealed pre-rotation
    p.write("obj-2", b"new-2").unwrap(); // queued, not yet sealed

    let mut batch = MembershipBatch::new();
    batch.remove("u1".to_string());
    let outcome = fixture.admin().apply_batch(GROUP, &batch).unwrap();
    assert!(outcome.gk_rotated);

    // the next enqueue observes the rotation, drains the window, and
    // everything still queued seals under the new ring at submission
    p.write("obj-3", b"new-3").unwrap();
    p.flush().unwrap();

    let writer = p.session_mut();
    for (object, payload) in [
        ("obj-0", &b"old-0"[..]),
        ("obj-1", b"old-1"),
        ("obj-2", b"new-2"),
        ("obj-3", b"new-3"),
    ] {
        assert_eq!(writer.read(object).unwrap(), payload);
    }

    // lazy window: pre-rotation objects stay readable on the stale ring…
    assert_eq!(revoked.read("obj-0").unwrap(), b"old-0");
    // …but the queued write sealed post-rotation locks the revoked member
    // out, even though it was enqueued before the revocation
    assert!(revoked.read("obj-2").is_err());
    assert!(revoked.read("obj-3").is_err());
}

#[test]
fn the_window_overlaps_store_latency() {
    let rtt = Duration::from_millis(20);
    let fixture = fixture_over(
        CloudStore::with_latency(LatencyModel::new(rtt, Duration::ZERO)),
        1,
    );
    let session = fleet_session(&fixture, WRITER, GROUP, 1, 0x77);
    let mut p = PipelinedSession::new(session, 4);

    // prime the ring outside the timed region
    p.write("obj-prime", b"prime").unwrap();
    p.flush().unwrap();

    let t0 = Instant::now();
    for i in 0..8 {
        p.write(&format!("obj-{i}"), b"x").unwrap();
    }
    p.flush().unwrap();
    let elapsed = t0.elapsed();
    // serial floor: 8 sequential CAS round trips = 160ms; four lanes
    // should land the batch in roughly two waves
    assert!(
        elapsed < rtt * 6,
        "8 writes at 20ms RTT took {elapsed:?} — the window is not overlapping"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    /// The satellite acceptance property: a pipelined replay of **any**
    /// trace observes byte-identical plaintexts to the serial replay —
    /// mid-trace (the running read digest) and post-trace (direct reads
    /// of every object).
    #[test]
    fn pipelined_replay_is_byte_identical_to_serial(
        seed in any::<u64>(),
        objects in 2usize..6,
        events in 15usize..40,
        write_ratio_pct in 30u32..80,
        churn_every in 10usize..25,
    ) {
        let trace = generate_read_write(&RwTraceConfig {
            objects,
            events,
            write_ratio: f64::from(write_ratio_pct) / 100.0,
            churn_every,
            churn_ops: 2,
            churn_revocation_ratio: 0.67,
            seed,
        });
        let run = |pipelined: bool| {
            let config = RwSystemConfig {
                partition_size: 2,
                pipelined,
                ..RwSystemConfig::default()
            };
            let mut backend = RwSystemBackend::with_store(CloudStore::new(), "g", &trace, config);
            replay_events(&trace.events, &mut backend, None);
            backend
        };
        let mut serial = run(false);
        let mut pipelined = run(true);
        prop_assert!(serial.failure().is_none(), "serial: {:?}", serial.failure());
        prop_assert!(pipelined.failure().is_none(), "pipelined: {:?}", pipelined.failure());
        // equal digests: mid-trace reads observed identical bytes
        prop_assert_eq!(serial.read_digest(), pipelined.read_digest());
        for i in 0..objects {
            let object = object_name(i);
            match (serial.session_mut().read(&object), pipelined.session_mut().read(&object)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "post-replay read of {} diverged: serial ok={} pipelined ok={}",
                    object, a.is_ok(), b.is_ok()
                ),
            }
        }
        // every trace write is accounted for: completed as a request, or
        // merged into one (never dropped)
        let (sm, pm) = (serial.session_metrics(), pipelined.session_metrics());
        prop_assert_eq!(sm.writes, pm.writes + pm.coalesced_writes);
    }
}
