//! Property test of the data-plane revocation guarantees: for random
//! groups, object sets and victims, after a revocation
//!
//! 1. the revoked member can decrypt **no object written at the new
//!    epoch**, ever;
//! 2. under the lazy policy the pre-revocation objects stay readable to
//!    them only until the sweeper migrates them — afterwards they are
//!    locked out of everything;
//! 3. surviving members read every object at every stage;
//! 4. the revoking batch itself performs zero object re-writes (the O(1)
//!    lazy revocation invariant).
//!
//! Case count: a light default (each case runs a full enclave + store
//! stack), scaled up by `PROPTEST_CASES` like the batch parity suite.

use acs::Admin;
use cloud_store::CloudStore;
use dataplane::{
    ClientSession, DataError, ReencryptionPolicy, RevocationCoordinator, SweepConfig, Sweeper,
};
use ibbe_sgx_core::{GroupEngine, MembershipBatch, PartitionSize};
use proptest::prelude::*;
use std::time::Duration;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|c| (c / 8).max(4))
        .unwrap_or(6)
}

fn session(admin: &Admin, store: &CloudStore, identity: &str, seed: u64) -> ClientSession {
    ClientSession::with_seed(
        identity,
        admin.engine().extract_user_key(identity).unwrap(),
        admin.engine().public_key().clone(),
        store.clone(),
        "g",
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn revocation_locks_out_new_epoch_now_and_old_epochs_after_sweep(
        seed: u64,
        members in 3usize..=6,
        objects in 1usize..=6,
        victim_sel: u8,
        partition in 2usize..=3,
    ) {
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        let engine = GroupEngine::bootstrap_seeded(
            PartitionSize::new(partition).unwrap(), seed_bytes).unwrap();
        let store = CloudStore::new();
        let admin = Admin::new(engine, store.clone());
        let mut names: Vec<String> = (0..members).map(|i| format!("m{i}")).collect();
        names.push("writer".into());
        names.push("sweeper".into());
        admin.create_group("g", names).unwrap();

        let mut writer = session(&admin, &store, "writer", seed ^ 1);
        for i in 0..objects {
            writer.write(&format!("o{i}"), format!("old-{i}").as_bytes()).unwrap();
        }

        // the victim opens a session (and derives the epoch-1 ring) while
        // still a member
        let victim_name = format!("m{}", victim_sel as usize % members);
        let mut victim = session(&admin, &store, &victim_name, seed ^ 2);
        prop_assert_eq!(victim.read("o0").unwrap(), b"old-0".to_vec());

        // lazy revocation: zero object re-writes at revocation time
        let cas_before = store.metrics().cas_puts;
        let mut sweeper = Sweeper::new(
            session(&admin, &store, "sweeper", seed ^ 3),
            SweepConfig { deadline: Duration::from_secs(5), max_per_tick: 2 },
        );
        let coordinator = RevocationCoordinator::new(&admin, ReencryptionPolicy::Lazy);
        let mut batch = MembershipBatch::new();
        batch.remove(victim_name.clone());
        let outcome = coordinator.revoke("g", &batch, &mut sweeper).unwrap();
        prop_assert!(outcome.batch.gk_rotated);
        let new_epoch = outcome.batch.epoch;
        // lazy revocation must not rewrite stored objects
        prop_assert_eq!(store.metrics().cas_puts, cas_before);

        // (1) anything written at the new epoch is opaque to the victim
        writer.write("fresh", b"new-epoch secret").unwrap();
        prop_assert_eq!(
            victim.read("fresh"),
            Err(DataError::UnknownEpoch(new_epoch))
        );

        // (2a) the lazy window: pre-revocation objects still open with the
        // victim's frozen ring
        for i in 0..objects {
            prop_assert_eq!(
                victim.read(&format!("o{i}")).unwrap(),
                format!("old-{i}").into_bytes()
            );
        }

        // the sweeper converges within its deadline
        let report = sweeper.run_until_converged().unwrap();
        prop_assert!(report.converged, "sweep did not converge: {:?}", report);
        prop_assert!(report.elapsed <= Duration::from_secs(5));
        prop_assert_eq!(report.migrated, objects);

        // (2b) ... and now the victim is locked out of everything
        for i in 0..objects {
            // a migrated object must reject the revoked member
            prop_assert_eq!(
                victim.read(&format!("o{i}")),
                Err(DataError::UnknownEpoch(new_epoch))
            );
        }

        // (3) a surviving member reads everything, old and new
        let survivor_name = (0..members)
            .map(|i| format!("m{i}"))
            .find(|m| m != &victim_name)
            .expect("members ≥ 3 guarantees a survivor");
        let mut survivor = session(&admin, &store, &survivor_name, seed ^ 4);
        for i in 0..objects {
            prop_assert_eq!(
                survivor.read(&format!("o{i}")).unwrap(),
                format!("old-{i}").into_bytes()
            );
        }
        prop_assert_eq!(survivor.read("fresh").unwrap(), b"new-epoch secret".to_vec());
    }
}
