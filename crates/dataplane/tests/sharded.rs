//! Integration tests of the sharded data plane: the PR's acceptance
//! criterion (a `SweepPool` over a `ShardedStore` converges a stale
//! namespace in measurably less wall-clock than a single sweeper on one
//! shard, with identical migration totals and nothing lost), replay
//! equivalence between the single and sharded deployments, epoch-history
//! compaction after converged sweeps, and the sessions' versions-map GC.

use cloud_store::{CloudStore, LatencyModel, ShardedStore, StoreHandle};
use dataplane::{
    ClientSession, ReencryptionPolicy, RevocationCoordinator, RwSystemBackend, RwSystemConfig,
    SweepConfig, SweepDriver, SweepPool,
};
use ibbe_sgx_core::{GroupEngine, MembershipBatch, PartitionSize};
use std::time::Duration;
use workloads::{generate_read_write, replay_events, RwOp, RwTraceConfig};

/// One deployment over any store: admin, writer, and a sweep pool of
/// `workers` workers over `data_shards` data folders.
struct Deployment {
    admin: acs::Admin,
    writer: ClientSession,
    pool: SweepPool,
}

fn deploy(
    store: impl Into<StoreHandle>,
    seed: u64,
    data_shards: usize,
    workers: usize,
    objects: usize,
    sweep: SweepConfig,
) -> Deployment {
    let store = store.into();
    let mut seed_bytes = [0u8; 32];
    seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
    let engine = GroupEngine::bootstrap_seeded(PartitionSize::new(4).unwrap(), seed_bytes).unwrap();
    let admin = acs::Admin::new(engine, store.clone());
    let members: Vec<String> = (0..6)
        .map(|i| format!("u{i}"))
        .chain(["writer".to_string(), "sweeper".to_string()])
        .collect();
    admin.create_group("g", members).unwrap();
    let session = |identity: &str, s: u64| {
        ClientSession::with_seed(
            identity,
            admin.engine().extract_user_key(identity).unwrap(),
            admin.engine().public_key().clone(),
            store.clone(),
            "g",
            s,
        )
        .with_data_shards(data_shards)
    };
    let mut writer = session("writer", seed ^ 0xaa);
    for i in 0..objects {
        writer
            .write(&format!("obj-{i:04}"), format!("payload {i}").as_bytes())
            .unwrap();
    }
    let pool = SweepPool::new(
        (0..workers)
            .map(|w| session("sweeper", seed ^ 0xbb ^ ((w as u64) << 32)))
            .collect(),
        sweep,
    );
    Deployment {
        admin,
        writer,
        pool,
    }
}

fn revoke(admin: &acs::Admin, pool: &mut SweepPool, victim: &str) {
    let coordinator = RevocationCoordinator::new(admin, ReencryptionPolicy::Lazy);
    let mut batch = MembershipBatch::new();
    batch.remove(victim);
    let outcome = coordinator.revoke("g", &batch, pool).unwrap();
    assert!(outcome.batch.gk_rotated && outcome.sweep.is_none());
}

/// THE acceptance criterion: with per-request latency, an 8-worker pool
/// over an 8-shard store converges the same stale namespace in measurably
/// less wall-clock than the single sweeper on one shard — same total
/// migrated, zero lost objects (every object readable at the new epoch).
#[test]
fn sweep_pool_on_sharded_store_beats_single_sweeper() {
    let n = 32;
    let latency = LatencyModel::new(Duration::from_millis(3), Duration::ZERO);
    let sweep = SweepConfig {
        deadline: Duration::from_secs(60),
        max_per_tick: 8,
    };

    // single sweeper, one shard; the ring is armed outside the timed
    // window on both deployments, so the comparison measures convergence
    // I/O, not key derivation
    let mut single = deploy(CloudStore::with_latency(latency), 11, 1, 1, n, sweep);
    revoke(&single.admin, &mut single.pool, "u0");
    single.pool.refresh().unwrap();
    let serial = single.pool.run_until_converged().unwrap();
    assert!(serial.converged);
    assert_eq!(serial.migrated, n);

    // 8 workers over 8 data shards on an 8-shard store
    let mut sharded = deploy(ShardedStore::with_latency(8, latency), 11, 8, 8, n, sweep);
    revoke(&sharded.admin, &mut sharded.pool, "u0");
    sharded.pool.refresh().unwrap();
    let parallel = sharded.pool.run_until_converged().unwrap();
    assert!(parallel.converged);
    assert_eq!(
        parallel.migrated, serial.migrated,
        "same total migrated on both deployments"
    );
    assert_eq!(parallel.stale, n);
    assert_eq!(parallel.scanned, n, "no object lost by the shard split");

    // zero lost objects: every object is at the new epoch and readable
    for i in 0..n {
        let (sealed, _) = sharded.writer.fetch(&format!("obj-{i:04}")).unwrap();
        assert_eq!(sealed.epoch, 2);
        assert_eq!(
            sharded.writer.read(&format!("obj-{i:04}")).unwrap(),
            format!("payload {i}").as_bytes()
        );
    }

    assert!(
        parallel.elapsed.as_secs_f64() < serial.elapsed.as_secs_f64() * 0.6,
        "8 shards must beat 1 measurably: {parallel:?} vs {serial:?}"
    );
}

/// Replaying the same rw trace through a single-store deployment and an
/// 8-shard/4-worker sharded deployment yields identical plaintext reads
/// for every object — the storage layout is invisible above the trait.
#[test]
fn sharded_and_single_store_replay_identically() {
    let trace = generate_read_write(&RwTraceConfig {
        objects: 12,
        events: 80,
        write_ratio: 0.5,
        churn_every: 25,
        churn_ops: 3,
        churn_revocation_ratio: 0.67,
        seed: 0xfeed,
    });
    let config = RwSystemConfig {
        sweep: SweepConfig {
            deadline: Duration::from_secs(5),
            max_per_tick: 4,
        },
        seed: 99,
        ..RwSystemConfig::default()
    };
    let mut single = RwSystemBackend::with_store(CloudStore::new(), "g", &trace, config);
    let mut sharded = RwSystemBackend::with_store(
        ShardedStore::new(8),
        "g",
        &trace,
        RwSystemConfig {
            data_shards: 8,
            sweep_workers: 4,
            ..config
        },
    );
    replay_events(&trace.events, &mut single, None);
    replay_events(&trace.events, &mut sharded, None);
    assert_eq!(
        single.failure(),
        None,
        "single replay applied the whole trace"
    );
    assert_eq!(
        sharded.failure(),
        None,
        "sharded replay applied the whole trace"
    );

    let written: std::collections::BTreeSet<&str> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            RwOp::Write { object } => Some(object.as_str()),
            _ => None,
        })
        .collect();
    assert!(!written.is_empty());
    assert_eq!(
        single.session_mut().list_objects(),
        sharded.session_mut().list_objects(),
        "merged sharded listing equals the single-store listing"
    );
    for object in written {
        assert_eq!(
            single.session_mut().read(object).unwrap(),
            sharded.session_mut().read(object).unwrap(),
            "plaintext of {object} must not depend on the layout"
        );
    }
}

/// Epoch-history compaction: after a converged full-namespace sweep, the
/// `_epochs` object shrinks to exactly the epochs still in use, current
/// members keep reading everything, and an unsafe early prune can never
/// happen through the coordinator (it keys off the sweep's floor epoch).
#[test]
fn converged_sweeps_compact_the_epoch_history() {
    let mut d = deploy(CloudStore::new(), 21, 2, 2, 6, SweepConfig::default());
    let coordinator =
        RevocationCoordinator::new(&d.admin, ReencryptionPolicy::Lazy).with_history_compaction();

    // three rotations pile up three retired epochs
    for victim in ["u0", "u1", "u2"] {
        let mut batch = MembershipBatch::new();
        batch.remove(victim);
        coordinator.revoke("g", &batch, &mut d.pool).unwrap();
    }
    assert_eq!(d.admin.metadata("g").unwrap().key_history.epoch_count(), 3);

    // sweep converges everything to epoch 4 → epochs 1..=3 are dead weight
    let report = d.pool.run_until_converged().unwrap();
    assert!(report.converged);
    assert_eq!(report.migrated, 6);
    assert_eq!(report.min_live_epoch, Some(4));
    let pruned = coordinator.compact_after("g", &report).unwrap();
    assert_eq!(pruned, 3);
    assert_eq!(
        d.admin.metadata("g").unwrap().key_history.epoch_count(),
        0,
        "no retired epoch is referenced by any object"
    );

    // survivors still read everything post-compaction
    for i in 0..6 {
        assert!(d.writer.read(&format!("obj-{i:04}")).is_ok());
    }
    // an idle re-compaction publishes nothing
    assert_eq!(coordinator.compact_after("g", &report).unwrap(), 0);
}

/// The eager policy compacts inline: after an eager revocation nothing is
/// stale, so the history is already minimal.
#[test]
fn eager_revocations_compact_inline() {
    let mut d = deploy(CloudStore::new(), 22, 1, 1, 4, SweepConfig::default());
    let coordinator =
        RevocationCoordinator::new(&d.admin, ReencryptionPolicy::Eager).with_history_compaction();
    let mut batch = MembershipBatch::new();
    batch.remove("u3");
    let outcome = coordinator.revoke("g", &batch, &mut d.pool).unwrap();
    let sweep = outcome.sweep.expect("eager sweeps inline");
    assert!(sweep.converged);
    assert_eq!(sweep.migrated, 4);
    assert_eq!(
        d.admin.metadata("g").unwrap().key_history.epoch_count(),
        0,
        "the retired epoch was pruned in the same revocation"
    );
    assert!(d.writer.read("obj-0000").is_ok());
}

/// A revoked member's frozen ring can win a CAS race against the sweeper
/// and re-seal an object at a *retired* epoch. Whatever the interleaving,
/// history compaction must never orphan that object: either the sweep
/// reports non-convergence (no pruning), or its floor keeps the retired
/// key, or the object was migrated first — in every case a survivor still
/// reads it after `compact_after`.
#[test]
fn conflicted_stale_writes_never_let_compaction_orphan_objects() {
    for offset_ms in [0u64, 6, 12, 18, 24, 36] {
        let latency = LatencyModel::new(Duration::from_millis(6), Duration::ZERO);
        let d = deploy(
            CloudStore::with_latency(latency),
            31,
            1,
            1,
            1,
            SweepConfig {
                deadline: Duration::from_secs(30),
                max_per_tick: 8,
            },
        );
        let mk = |identity: &str, s: u64| {
            ClientSession::with_seed(
                identity,
                d.admin.engine().extract_user_key(identity).unwrap(),
                d.admin.engine().public_key().clone(),
                d.admin.store().clone(),
                "g",
                s,
            )
        };
        // the victim arms an epoch-1 ring and the object's CAS version
        let mut victim = mk("u5", 40 + offset_ms);
        victim.read("obj-0000").unwrap();

        let mut pool = d.pool;
        revoke(&d.admin, &mut pool, "u5");
        pool.refresh().unwrap();
        let sweep = std::thread::spawn(move || {
            let report = pool.run_until_converged().unwrap();
            (pool, report)
        });
        std::thread::sleep(Duration::from_millis(offset_ms));
        // frozen-ring write: seals at retired epoch 1; may lose the CAS
        // race to the sweeper, which is fine
        let _ = victim.write("obj-0000", b"stale ring write");
        let (_pool, report) = sweep.join().unwrap();

        let coordinator = RevocationCoordinator::new(&d.admin, ReencryptionPolicy::Lazy)
            .with_history_compaction();
        coordinator.compact_after("g", &report).unwrap();
        let mut survivor = mk("u1", 50 + offset_ms);
        assert!(
            survivor.read("obj-0000").is_ok(),
            "offset {offset_ms}ms: compaction orphaned the object ({report:?})"
        );
    }
}

/// Versions-map GC: deletions (own or foreign) stop leaking CAS
/// expectations in long-lived sessions, and the sweeper's scan prunes its
/// own map as a side effect.
#[test]
fn versions_map_gc_drops_deleted_objects() {
    let mut d = deploy(CloudStore::new(), 23, 2, 2, 8, SweepConfig::default());
    assert_eq!(d.writer.tracked_versions(), 8);

    // own delete drops the entry immediately
    assert!(d.writer.delete("obj-0000"));
    assert_eq!(d.writer.tracked_versions(), 7);

    // foreign deletes (another actor, straight through the store) leak
    // until gc_versions reconciles against the live namespace
    let store = d.admin.store().clone();
    for i in 1..4 {
        let name = format!("obj-{i:04}");
        assert!(store.delete(d.writer.folder_of(&name), &name));
    }
    assert_eq!(d.writer.tracked_versions(), 7);
    assert_eq!(d.writer.gc_versions(), 3);
    assert_eq!(d.writer.tracked_versions(), 4);

    // a fetch of a vanished object also reconciles its entry
    let (sealed, _) = d.writer.fetch("obj-0004").unwrap();
    assert_eq!(sealed.epoch, 1);
    store.delete(d.writer.folder_of("obj-0004"), "obj-0004");
    assert!(d.writer.fetch("obj-0004").is_err());
    assert_eq!(d.writer.tracked_versions(), 3);

    // the sweeper's scan GCs its own migrated-object entries: migrate the
    // three live objects, delete them behind the pool's back, re-sweep
    revoke(&d.admin, &mut d.pool, "u0");
    let report = d.pool.run_until_converged().unwrap();
    assert!(report.converged);
    assert_eq!(report.migrated, 3);
    for i in 5..8 {
        let name = format!("obj-{i:04}");
        store.delete(d.writer.folder_of(&name), &name);
    }
    let report = d.pool.run_until_converged().unwrap();
    assert!(report.converged);
    assert_eq!(report.scanned, 0, "namespace is empty now");
    let tracked: usize = d
        .pool
        .workers()
        .iter()
        .map(|w| w.session().tracked_versions())
        .sum();
    assert_eq!(tracked, 0, "the scan pruned the pool's migrated entries");
}
