//! Property test of fleet-sweep fairness: for any fleet shape (group
//! count, skewed object counts, worker count, lease size, shard count) and
//! any interleaving (arm order) of one-revocation waves across the groups,
//! a shared W-worker scheduler must
//!
//! 1. converge every group within its deadline (zero overshoot — no group
//!    starves, even the freshest);
//! 2. never grant a lease to a fresher group while a staler one had a unit
//!    ready (the staleness-priority invariant, checked grant by grant);
//! 3. bound any group's wait: the number of leases granted before a
//!    group's first is at most the total lease budget of strictly staler
//!    groups (work units + stale objects) — the "bounded gap" that makes
//!    starvation structurally impossible;
//! 4. migrate exactly what G dedicated pools migrate on an identically
//!    seeded deployment, group by group.
//!
//! Case count: a light default (each case boots two full fleet stacks),
//! scaled up by `PROPTEST_CASES` like the other data-plane suites.

use acs::FleetFixture;
use cloud_store::CloudStore;
use dataplane::fixtures::{fleet_session, fleet_sweep_sessions};
use dataplane::{
    ClientSession, FleetConfig, SweepConfig, SweepDriver, SweepPool, SweepScheduler, SweepTask,
};
use ibbe_sgx_core::{MembershipBatch, PartitionSize};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const WRITER: &str = "writer";
const SWEEPER: &str = "sweeper";

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|c| (c / 8).max(4))
        .unwrap_or(5)
}

struct Stack {
    fixture: FleetFixture,
}

fn build_stack(sizes: &[usize], shards: usize, seed: u64) -> Stack {
    let specs: Vec<(String, Vec<String>)> = (0..sizes.len())
        .map(|i| {
            (
                format!("g{i}"),
                (0..3).map(|m| format!("g{i}-u{m}")).collect(),
            )
        })
        .collect();
    let fixture = FleetFixture::new(
        CloudStore::new(),
        PartitionSize::new(2).unwrap(),
        &specs,
        &[WRITER.to_string(), SWEEPER.to_string()],
        seed,
    )
    .unwrap();
    for (i, &objects) in sizes.iter().enumerate() {
        let mut writer = fleet_session(&fixture, WRITER, &format!("g{i}"), shards, seed ^ 0xa0);
        for o in 0..objects {
            writer
                .write(&format!("obj-{o:03}"), format!("g{i}/{o}").as_bytes())
                .unwrap();
        }
    }
    // the wave: one revocation per group
    for i in 0..sizes.len() {
        let mut batch = MembershipBatch::new();
        batch.remove(format!("g{i}-u0"));
        let outcome = fixture
            .admin()
            .apply_batch(&format!("g{i}"), &batch)
            .unwrap();
        assert!(outcome.gk_rotated);
    }
    Stack { fixture }
}

fn sweep_sessions(stack: &Stack, group: &str, shards: usize, seed: u64) -> Vec<ClientSession> {
    fleet_sweep_sessions(&stack.fixture, SWEEPER, group, shards, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn any_interleaving_converges_fairly_and_matches_dedicated_pools(
        seed: u64,
        groups in 2usize..=4,
        workers in 1usize..=3,
        shards in 1usize..=2,
        lease in 1usize..=4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1ee7);
        let sizes: Vec<usize> = (0..groups).map(|_| rng.gen_range(0..=6)).collect();
        // a random arm order: staleness uncorrelated with registration
        let mut arm_order: Vec<usize> = (0..groups).collect();
        for i in (1..groups).rev() {
            let j = rng.gen_range(0..=i);
            arm_order.swap(i, j);
        }

        // dedicated pools, group by group, on their own stack
        let ded = build_stack(&sizes, shards, seed);
        let mut dedicated_migrated = vec![0usize; groups];
        for i in 0..groups {
            let mut pool = SweepPool::new(
                sweep_sessions(&ded, &format!("g{i}"), shards, 0xd0),
                SweepConfig::default(),
            );
            let report = pool.run_until_converged().unwrap();
            prop_assert!(report.converged);
            prop_assert_eq!(report.migrated, sizes[i]);
            dedicated_migrated[i] = report.migrated;
        }

        // the shared fleet on an identically seeded stack
        let stack = build_stack(&sizes, shards, seed);
        let mut scheduler = SweepScheduler::new(FleetConfig {
            workers,
            lease,
            deadline: Duration::from_secs(120),
            max_passes: 32,
            max_retries: 8,
            ..FleetConfig::default()
        });
        for i in 0..groups {
            scheduler.register(SweepTask::new(
                sweep_sessions(&stack, &format!("g{i}"), shards, 0x5a),
                SweepConfig::default(),
            ));
        }
        let mut stamp_of = vec![0u64; groups];
        for (stamp, &i) in arm_order.iter().enumerate() {
            scheduler.arm(i);
            stamp_of[i] = stamp as u64;
        }
        let report = scheduler.converge_all().unwrap();

        // 1. every group converges, within deadline, nobody starves
        prop_assert!(report.total.converged);
        prop_assert_eq!(report.groups.len(), groups);
        for (i, &expected) in dedicated_migrated.iter().enumerate() {
            let g = report.group(&format!("g{i}")).unwrap();
            prop_assert!(g.report.converged, "g{} converged", i);
            prop_assert_eq!(g.overshoot, Duration::ZERO);
            // 4. same work as the dedicated pool, group by group
            prop_assert_eq!(g.report.migrated, expected);
        }

        // 2. staleness priority: no grant while a staler unit was ready
        for grant in &report.leases {
            prop_assert!(
                grant.stamp <= grant.remaining_min_stamp.unwrap_or(u64::MAX),
                "lease for {} (stamp {}) granted over a staler ready unit",
                &grant.group, grant.stamp
            );
        }

        // 3. bounded gap: leases granted before group g's first lease are
        // bounded by the total lease budget of strictly staler groups
        for i in 0..groups {
            let name = format!("g{i}");
            let first = report
                .leases
                .iter()
                .position(|l| l.group == name)
                .expect("every armed group gets at least one lease");
            let staler_budget: usize = (0..groups)
                .filter(|&h| stamp_of[h] < stamp_of[i])
                .map(|h| shards + sizes[h])
                .sum();
            prop_assert!(
                first <= staler_budget,
                "g{}'s first lease waited for {} grants, budget of staler groups is {}",
                i, first, staler_budget
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Weighted-fair QoS: a tenant with a 10x-noisier backlog, armed first
    /// (maximally stale — strict staleness order would drain its whole
    /// backlog before anyone else's first lease), cannot push an equally
    /// weighted victim group's convergence past twice its fair share of
    /// the grant log.
    #[test]
    fn weighted_fairness_bounds_a_noisy_tenant(
        seed: u64,
        victims in 1usize..=3,
        backlog in 2usize..=4,
    ) {
        let mut sizes = vec![10 * backlog];
        sizes.extend(std::iter::repeat_n(backlog, victims));
        let tenants = sizes.len();
        let stack = build_stack(&sizes, 1, seed);
        let mut scheduler = SweepScheduler::new(FleetConfig {
            // one worker: the grant log is the exact service order
            workers: 1,
            lease: 1,
            deadline: Duration::from_secs(120),
            max_passes: 32,
            max_retries: 8,
            ..FleetConfig::default()
        });
        for i in 0..tenants {
            scheduler.register(
                SweepTask::new(
                    sweep_sessions(&stack, &format!("g{i}"), 1, 0x5a),
                    SweepConfig::default(),
                )
                // equal shares for everyone; any non-default weight flips
                // the run from staleness order to weighted-fair
                .with_weight(2),
            );
        }
        // g0 (the noisy tenant) arms first, so it is the stalest
        for i in 0..tenants {
            scheduler.arm(i);
        }
        let report = scheduler.converge_all().unwrap();
        prop_assert!(report.total.converged);

        for i in 1..tenants {
            let name = format!("g{i}");
            let g = report.group(&name).unwrap();
            prop_assert!(g.report.converged);
            prop_assert_eq!(g.report.migrated, backlog);
            let own = report.leases.iter().filter(|l| l.group == name).count();
            let done = report
                .leases
                .iter()
                .rposition(|l| l.group == name)
                .expect("the victim got leases") + 1;
            // fair share: with equal weights every tenant's leases charge
            // the same virtual time, so a victim's backlog completes
            // within ~tenants x its own lease count grants; 2x absorbs
            // scan-only leases and round skew. The noisy tenant's 10x
            // backlog must not stretch this.
            prop_assert!(
                done <= 2 * tenants * own,
                "g{}'s backlog finished at grant {} of {} (own leases {})",
                i, done, report.leases.len(), own
            );
        }
    }
}
