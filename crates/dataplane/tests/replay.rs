//! End-to-end replay of the read/write workload through the shared generic
//! event driver — membership traces and data-plane traces now drive one
//! code path (`workloads::replay_events`).

use dataplane::{ReencryptionPolicy, RwSystemBackend, SweepConfig, SweepDriver};
use std::time::Duration;
use workloads::{generate_read_write, replay_events, RwOp, RwTraceConfig};

fn config() -> RwTraceConfig {
    RwTraceConfig {
        objects: 6,
        events: 40,
        write_ratio: 0.5,
        churn_every: 20,
        churn_ops: 3,
        churn_revocation_ratio: 0.67,
        seed: 0xf00d,
    }
}

#[test]
fn rw_trace_replays_through_the_generic_driver_lazy() {
    let trace = generate_read_write(&config());
    let mut backend = RwSystemBackend::new(
        4,
        "g",
        &trace,
        ReencryptionPolicy::Lazy,
        SweepConfig {
            deadline: Duration::from_secs(5),
            max_per_tick: 4,
        },
        64,
        42,
    );
    let report = replay_events(&trace.events, &mut backend, Some(10));
    assert_eq!(backend.failure(), None, "replay applied the whole trace");

    let writes = trace
        .events
        .iter()
        .filter(|e| matches!(e, RwOp::Write { .. }))
        .count();
    let reads = trace
        .events
        .iter()
        .filter(|e| matches!(e, RwOp::Read { .. }))
        .count();
    assert_eq!(report.series("write").len(), writes);
    assert_eq!(report.series("read").len(), reads);
    assert_eq!(report.series("churn").len(), trace.churn_count());
    assert_eq!(backend.session_metrics().reads as usize, reads);
    assert!(backend.session_metrics().writes as usize >= writes);
    // lazy: churn events performed no data-plane work in-line
    assert_eq!(backend.sweeper_metrics().migrations, 0);

    // the sweeper converges the leftovers after the fact
    let sweep = backend.sweeper_mut().run_until_converged().unwrap();
    assert!(sweep.converged);
}

#[test]
fn rw_trace_replays_through_the_generic_driver_eager() {
    let trace = generate_read_write(&config());
    let mut backend = RwSystemBackend::new(
        4,
        "g",
        &trace,
        ReencryptionPolicy::Eager,
        SweepConfig::default(),
        64,
        43,
    );
    replay_events(&trace.events, &mut backend, None);
    assert_eq!(backend.failure(), None, "replay applied the whole trace");
    // eager: every churn with a revocation swept in-line, so nothing can be
    // stale now
    assert!(backend.sweeper_metrics().migrations > 0);
    let sweep = backend.sweeper_mut().run_until_converged().unwrap();
    assert!(sweep.converged);
    assert_eq!(sweep.migrated, 0, "eager left nothing stale behind");
}
