//! Integration tests of the multi-group sweep scheduler: staleness-
//! priority leasing on a bounded shared fleet, watch-driven re-arming
//! (idle groups cost nothing), equivalence with dedicated per-group
//! pools, per-group metrics attribution, and epoch-history compaction
//! driven from a fleet report.

use acs::FleetFixture;
use cloud_store::CloudStore;
use dataplane::fixtures::{fleet_session, fleet_sweep_sessions};
use dataplane::{
    FleetConfig, ReencryptionPolicy, RevocationCoordinator, SweepConfig, SweepDriver, SweepPool,
    SweepScheduler, SweepTask,
};
use ibbe_sgx_core::{MembershipBatch, PartitionSize};
use std::time::Duration;

const WRITER: &str = "writer";
const SWEEPER: &str = "sweeper";

struct Fleet {
    fixture: FleetFixture,
    shards: usize,
}

/// Boots one admin over `sizes.len()` groups (`g0`, `g1`, …), each holding
/// `sizes[i]` objects written by a shared writer identity.
fn fleet(sizes: &[usize], shards: usize, seed: u64) -> Fleet {
    let specs: Vec<(String, Vec<String>)> = (0..sizes.len())
        .map(|i| {
            (
                format!("g{i}"),
                (0..4).map(|m| format!("g{i}-u{m}")).collect(),
            )
        })
        .collect();
    let fixture = FleetFixture::new(
        CloudStore::new(),
        PartitionSize::new(4).unwrap(),
        &specs,
        &[WRITER.to_string(), SWEEPER.to_string()],
        seed,
    )
    .unwrap();
    for (i, &objects) in sizes.iter().enumerate() {
        let mut writer = fleet_session(&fixture, WRITER, &format!("g{i}"), shards, seed ^ 0xa0);
        for o in 0..objects {
            writer
                .write(
                    &format!("obj-{o:04}"),
                    format!("g{i} payload {o}").as_bytes(),
                )
                .unwrap();
        }
    }
    Fleet { fixture, shards }
}

fn task(f: &Fleet, group: &str, seed: u64) -> SweepTask {
    SweepTask::new(
        fleet_sweep_sessions(&f.fixture, SWEEPER, group, f.shards, seed),
        SweepConfig::default(),
    )
}

fn revoke(f: &Fleet, group: &str, victim: &str) {
    let mut batch = MembershipBatch::new();
    batch.remove(victim);
    let outcome = f.fixture.admin().apply_batch(group, &batch).unwrap();
    assert!(outcome.gk_rotated);
}

/// The headline: W workers converge G > W groups; leases always go to the
/// stalest ready group (verified from the grant log, race-free), every
/// group converges and the most-behind group finishes before the freshest.
#[test]
fn shared_fleet_respects_staleness_priority() {
    let sizes = [6, 6, 6, 6, 6, 6];
    let f = fleet(&sizes, 2, 11);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 2,
        lease: 2,
        deadline: Duration::from_secs(60),
        max_passes: 32,
        max_retries: 8,
        ..FleetConfig::default()
    });
    for i in 0..sizes.len() {
        scheduler.register(task(&f, &format!("g{i}"), 0x50 + i as u64));
    }
    // the wave lands in reverse registration order: g5 is most behind
    let arm_order = [5usize, 4, 3, 2, 1, 0];
    for &i in &arm_order {
        revoke(&f, &format!("g{i}"), &format!("g{i}-u0"));
        scheduler.arm(i);
    }

    let report = scheduler.converge_all().unwrap();
    assert!(report.total.converged);
    assert_eq!(report.total.migrated, sizes.iter().sum::<usize>());
    assert_eq!(report.groups.len(), sizes.len());
    for (i, &objects) in sizes.iter().enumerate() {
        let g = report.group(&format!("g{i}")).unwrap();
        assert!(g.report.converged, "g{i} converged");
        assert_eq!(g.report.migrated, objects);
        assert_eq!(g.report.scanned, objects);
        assert_eq!(g.overshoot, Duration::ZERO);
    }

    // no priority inversion: every grant went to the stalest ready group
    assert!(!report.leases.is_empty());
    for lease in &report.leases {
        assert!(
            lease.stamp <= lease.remaining_min_stamp.unwrap_or(u64::MAX),
            "lease for {} (stamp {}) granted while a staler group was ready",
            lease.group,
            lease.stamp
        );
    }

    // a fixed fleet (no floor/ceiling configured) never scales: the
    // active set is the configured width for the whole run
    assert_eq!(report.peak_workers, report.workers);

    // the most-behind group finishes its backlog before the freshest
    let order = report.completion_order();
    let pos = |g: &str| order.iter().position(|o| *o == g).unwrap();
    assert!(
        pos("g5") < pos("g0"),
        "stalest g5 must complete before freshest g0: {order:?}"
    );

    // a served backlog disarms; an idle fleet run is empty
    assert!((0..sizes.len()).all(|i| !scheduler.is_armed(i)));
    let idle = scheduler.converge_all().unwrap();
    assert!(idle.groups.is_empty() && idle.leases.is_empty());

    // everything reads back at the new epoch for a surviving member
    for (i, &objects) in sizes.iter().enumerate() {
        let mut reader = fleet_session(&f.fixture, WRITER, &format!("g{i}"), 2, 0xbeef);
        for o in 0..objects {
            reader.read(&format!("obj-{o:04}")).unwrap();
        }
    }
}

/// Watch-driven re-arming: only groups whose key epoch moved get armed;
/// structural changes and idle groups never wake the sweep machinery, so
/// idle groups cost no migrations and no scans.
#[test]
fn watch_arms_exactly_the_rotated_groups() {
    let f = fleet(&[3, 3, 3], 1, 22);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 2,
        ..FleetConfig::default()
    });
    for i in 0..3 {
        scheduler.register(task(&f, &format!("g{i}"), 0x90 + i as u64));
    }

    // nothing changed: the watch times out quietly
    assert_eq!(scheduler.watch(Duration::from_millis(30)).unwrap(), 0);

    // a pure add bumps g0's metadata but not its epoch: still no arming
    let mut adds = MembershipBatch::new();
    adds.add("g0-new-member");
    let outcome = f.fixture.admin().apply_batch("g0", &adds).unwrap();
    assert!(!outcome.gk_rotated);
    assert_eq!(scheduler.watch(Duration::from_millis(30)).unwrap(), 0);

    // a rotation in g1 arms exactly g1
    revoke(&f, "g1", "g1-u0");
    assert_eq!(scheduler.watch(Duration::from_secs(5)).unwrap(), 1);
    assert!(!scheduler.is_armed(0) && scheduler.is_armed(1) && !scheduler.is_armed(2));

    let report = scheduler.converge_all().unwrap();
    assert_eq!(report.completion_order(), vec!["g1"]);
    assert_eq!(report.group("g1").unwrap().report.migrated, 3);

    // idle groups cost nothing: no migrations, no scans attributed to them
    let metrics = scheduler.metrics();
    for idle in ["g0", "g2"] {
        let m = metrics.group(idle).unwrap();
        assert_eq!(m.migrations, 0, "{idle} never migrated");
        assert_eq!(m.reads, 0, "{idle} never read an object");
    }
    assert_eq!(metrics.group("g1").unwrap().migrations, 3);
    assert_eq!(metrics.total.migrations, 3);
}

/// A shared fleet does exactly the work G dedicated pools do: identical
/// per-group migration totals on identically seeded deployments, and the
/// per-group metrics breakdown sums to the fleet aggregate.
#[test]
fn shared_fleet_matches_dedicated_pools() {
    let sizes = [9, 4, 1, 6];
    let shards = 2;

    // dedicated pools, one per group, on their own stack
    let ded = fleet(&sizes, shards, 33);
    let mut dedicated_migrated = Vec::new();
    for (i, &objects) in sizes.iter().enumerate() {
        let group = format!("g{i}");
        revoke(&ded, &group, &format!("g{i}-u0"));
        let mut pool = SweepPool::new(
            fleet_sweep_sessions(&ded.fixture, SWEEPER, &group, shards, 0xd0),
            SweepConfig::default(),
        );
        let report = pool.run_until_converged().unwrap();
        assert!(report.converged);
        assert_eq!(report.migrated, objects);
        dedicated_migrated.push(report.migrated);
    }

    // the shared fleet on an identically seeded stack
    let f = fleet(&sizes, shards, 33);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 3,
        lease: 4,
        ..FleetConfig::default()
    });
    for i in 0..sizes.len() {
        scheduler.register(task(&f, &format!("g{i}"), 0x70 + i as u64));
        revoke(&f, &format!("g{i}"), &format!("g{i}-u0"));
    }
    scheduler.arm_all();
    let report = scheduler.converge_all().unwrap();
    for (i, &expected) in dedicated_migrated.iter().enumerate() {
        assert_eq!(
            report.group(&format!("g{i}")).unwrap().report.migrated,
            expected,
            "g{i}: shared fleet must migrate exactly what a dedicated pool does"
        );
    }

    let metrics = scheduler.metrics();
    let summed = metrics
        .by_group
        .iter()
        .fold(0u64, |acc, (_, m)| acc + m.migrations);
    assert_eq!(summed, metrics.total.migrations);
    assert_eq!(summed, sizes.iter().sum::<usize>() as u64);
}

/// Rotations landing while a task is already armed merge into the same
/// backlog (oldest stamp), converge in one wave, and the group's fleet
/// report is a valid floor for epoch-history compaction.
#[test]
fn merged_backlogs_converge_and_compact_history() {
    let f = fleet(&[5], 2, 44);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 2,
        ..FleetConfig::default()
    });
    scheduler.register(task(&f, "g0", 0x60));

    revoke(&f, "g0", "g0-u0");
    scheduler.arm(0);
    revoke(&f, "g0", "g0-u1"); // second rotation joins the armed backlog
    assert_eq!(
        f.fixture
            .admin()
            .metadata("g0")
            .unwrap()
            .key_history
            .epoch_count(),
        2
    );

    let report = scheduler.converge_all().unwrap();
    let g = report.group("g0").unwrap();
    assert!(g.report.converged);
    assert_eq!(
        g.report.migrated, 5,
        "one migration per object, not per epoch"
    );
    assert_eq!(g.report.min_live_epoch, Some(3));

    // the labelled fleet report drives the same compaction a dedicated
    // pool's report would
    let coordinator = RevocationCoordinator::new(f.fixture.admin(), ReencryptionPolicy::Lazy)
        .with_history_compaction();
    assert_eq!(coordinator.compact_after("g0", &g.report).unwrap(), 2);
    assert_eq!(
        f.fixture
            .admin()
            .metadata("g0")
            .unwrap()
            .key_history
            .epoch_count(),
        0
    );

    // survivors still read everything post-compaction
    let mut reader = fleet_session(&f.fixture, WRITER, "g0", 2, 0xcafe);
    for o in 0..5 {
        reader.read(&format!("obj-{o:04}")).unwrap();
    }
}

/// Autoscaling: a deep multi-group backlog drives the active worker set
/// up from the floor (the peak lands in the report), and the whole
/// backlog converges exactly as it would on a fixed fleet.
#[test]
fn autoscaler_follows_the_backlog() {
    let sizes = [6, 6, 6, 6];
    let f = fleet(&sizes, 2, 55);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 4,
        min_workers: 1,
        max_workers: 4,
        lease: 2,
        ..FleetConfig::default()
    });
    for i in 0..sizes.len() {
        scheduler.register(task(&f, &format!("g{i}"), 0xa0 + i as u64));
        revoke(&f, &format!("g{i}"), &format!("g{i}-u0"));
    }
    scheduler.arm_all();
    let report = scheduler.converge_all().unwrap();
    assert!(report.total.converged);
    assert_eq!(report.total.migrated, sizes.iter().sum::<usize>());
    assert_eq!(report.workers, 4);
    assert!(
        report.peak_workers > 1 && report.peak_workers <= 4,
        "eight ready units over a one-worker floor must scale up (peak {})",
        report.peak_workers
    );
}

/// A lease-rate cap defers only the capped tenant: an uncapped group
/// behind it in staleness converges at full speed, while the capped
/// group's grants respect the configured gap.
#[test]
fn rate_cap_defers_only_the_capped_tenant() {
    let sizes = [6, 6];
    let f = fleet(&sizes, 1, 66);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 1,
        lease: 2,
        ..FleetConfig::default()
    });
    scheduler.register(task(&f, "g0", 0xb0).with_lease_rate_cap(2));
    scheduler.register(task(&f, "g1", 0xb1));
    revoke(&f, "g0", "g0-u0");
    revoke(&f, "g1", "g1-u0");
    scheduler.arm(0); // the capped tenant is the staler one
    scheduler.arm(1);
    let report = scheduler.converge_all().unwrap();
    assert!(report.total.converged);
    let g0 = report.group("g0").unwrap();
    let g1 = report.group("g1").unwrap();
    assert_eq!(g0.report.migrated, 6);
    assert_eq!(g1.report.migrated, 6);
    // the uncapped group overtakes the staler capped one: a deferred unit
    // never blocks the grants queued behind it
    assert_eq!(report.completion_order()[0], "g1");
    assert!(g1.report.elapsed < g0.report.elapsed);
    // the cap really paced g0: n grants take at least (n - 1) gaps
    let n0 = report.leases.iter().filter(|l| l.group == "g0").count() as u32;
    assert!(n0 >= 2, "a 6-object backlog takes several leases");
    let floor = Duration::from_millis(500) * (n0 - 1) * 4 / 5;
    assert!(
        g0.report.elapsed >= floor,
        "{n0} grants under a 500ms gap finished in {:?}",
        g0.report.elapsed
    );
}

/// Weight buys throughput: of two equal backlogs on one worker, the
/// 4x-weighted group converges first even though it armed later
/// (staleness alone would put it second).
#[test]
fn weight_buys_a_larger_share() {
    let sizes = [8, 8];
    let f = fleet(&sizes, 1, 77);
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 1,
        lease: 1,
        ..FleetConfig::default()
    });
    scheduler.register(task(&f, "g0", 0xc0));
    scheduler.register(task(&f, "g1", 0xc1).with_weight(4));
    revoke(&f, "g0", "g0-u0");
    revoke(&f, "g1", "g1-u0");
    scheduler.arm(0); // the unweighted group is staler
    scheduler.arm(1);
    let report = scheduler.converge_all().unwrap();
    assert!(report.total.converged);
    assert_eq!(report.group("g0").unwrap().report.migrated, 8);
    assert_eq!(report.group("g1").unwrap().report.migrated, 8);
    assert_eq!(
        report.completion_order()[0],
        "g1",
        "the 4x-weighted group must finish its equal backlog first"
    );
}
