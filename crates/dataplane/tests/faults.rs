//! Fault-injection suite: the fleet over a misbehaving store.
//!
//! The sweeper sessions route every request through a seeded
//! [`FaultyStore`] (outages, timeouts, torn polls, spurious CAS
//! conflicts), while the admin and the verifying readers keep a clean
//! handle. For **any** injected fault schedule the fleet must
//!
//! 1. complete the run (`converge_all` returns `Ok`, never aborts the
//!    process) and converge every group;
//! 2. migrate exactly what an identically seeded fault-free deployment
//!    migrates, group by group — failed requests have no partial effect,
//!    so retries and re-leases never double-migrate;
//! 3. lose zero objects: every written object is still readable with its
//!    exact plaintext afterwards;
//! 4. leak nothing to revoked members: after convergence a revoked
//!    identity can read none of the group's objects.
//!
//! The deterministic test at the bottom is the crash-safety acceptance
//! case: a one-shot panic armed mid-pass kills a sweep worker's lease,
//! and the scheduler must re-lease the unit under the same stamp and
//! still satisfy 1–4.
//!
//! Case count: a light default (each case boots two full fleet stacks),
//! scaled up by `PROPTEST_CASES` like the other data-plane suites.

use acs::FleetFixture;
use cloud_store::{CloudStore, FaultConfig, FaultInjector, FaultyStore, ShardedStore, StoreHandle};
use dataplane::fixtures::{
    fleet_session, fleet_session_on, fleet_sweep_sessions, fleet_sweep_sessions_on,
};
use dataplane::{
    ClientSession, FleetConfig, PipelinedSession, RetryPolicy, SweepConfig, SweepDriver, SweepPool,
    SweepScheduler, SweepTask,
};
use ibbe_sgx_core::{MembershipBatch, PartitionSize};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const WRITER: &str = "writer";
const SWEEPER: &str = "sweeper";

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|c| (c / 8).max(4))
        .unwrap_or(5)
}

struct Stack {
    fixture: FleetFixture,
}

/// Boots groups `g0..gN` of 3 members each (plus the service identities),
/// writes `sizes[i]` objects into group `i`, then revokes `g{i}-u0` from
/// every group — the staleness wave the sweeps must clear.
fn build_stack(sizes: &[usize], shards: usize, seed: u64) -> Stack {
    build_stack_on(CloudStore::new().into(), sizes, shards, seed)
}

/// Like [`build_stack`], but over an arbitrary store — the live-resize
/// cases deploy on a [`ShardedStore`] so the routing table can grow and
/// shrink mid-sweep.
fn build_stack_on(store: StoreHandle, sizes: &[usize], shards: usize, seed: u64) -> Stack {
    let specs: Vec<(String, Vec<String>)> = (0..sizes.len())
        .map(|i| {
            (
                format!("g{i}"),
                (0..3).map(|m| format!("g{i}-u{m}")).collect(),
            )
        })
        .collect();
    let fixture = FleetFixture::new(
        store,
        PartitionSize::new(2).unwrap(),
        &specs,
        &[WRITER.to_string(), SWEEPER.to_string()],
        seed,
    )
    .unwrap();
    for (i, &objects) in sizes.iter().enumerate() {
        let mut writer = fleet_session(&fixture, WRITER, &format!("g{i}"), shards, seed ^ 0xa0);
        for o in 0..objects {
            writer
                .write(&format!("obj-{o:03}"), format!("g{i}/{o}").as_bytes())
                .unwrap();
        }
    }
    for i in 0..sizes.len() {
        let mut batch = MembershipBatch::new();
        batch.remove(format!("g{i}-u0"));
        let outcome = fixture
            .admin()
            .apply_batch(&format!("g{i}"), &batch)
            .unwrap();
        assert!(outcome.gk_rotated);
    }
    Stack { fixture }
}

/// Sweeper sessions whose every store request rolls `injector`'s schedule.
fn faulty_sweep_sessions(
    stack: &Stack,
    injector: &Arc<FaultInjector>,
    group: &str,
    shards: usize,
    seed: u64,
) -> Vec<ClientSession> {
    let clean = stack.fixture.admin().store().clone();
    let faulty: StoreHandle = FaultyStore::with_injector(clean, Arc::clone(injector)).into();
    fleet_sweep_sessions_on(&stack.fixture, faulty, SWEEPER, group, shards, seed)
}

/// Fault-free dedicated pools: the migrated-total baseline the faulted
/// fleet must reproduce exactly.
fn baseline_migrated(sizes: &[usize], shards: usize, seed: u64) -> Vec<usize> {
    let stack = build_stack(sizes, shards, seed);
    sizes
        .iter()
        .enumerate()
        .map(|(i, &expected)| {
            let mut pool = SweepPool::new(
                fleet_sweep_sessions(&stack.fixture, SWEEPER, &format!("g{i}"), shards, 0xd0),
                SweepConfig::default(),
            );
            let report = pool.run_until_converged().unwrap();
            assert!(report.converged);
            assert_eq!(report.migrated, expected);
            report.migrated
        })
        .collect()
}

/// 3 + 4: every object readable with its exact plaintext by a member,
/// none readable by the revoked identity.
fn assert_no_loss_no_leak(stack: &Stack, sizes: &[usize], shards: usize) {
    for (i, &objects) in sizes.iter().enumerate() {
        let group = format!("g{i}");
        let mut member = fleet_session(&stack.fixture, WRITER, &group, shards, 0xbeef);
        let mut revoked =
            fleet_session(&stack.fixture, &format!("g{i}-u0"), &group, shards, 0xdead);
        for o in 0..objects {
            let name = format!("obj-{o:03}");
            assert_eq!(
                member.read(&name).unwrap(),
                format!("g{i}/{o}").into_bytes(),
                "object {name} of {group} lost or corrupted"
            );
            assert!(
                revoked.read(&name).is_err(),
                "revoked member still reads {name} of {group}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn any_fault_schedule_converges_with_zero_loss(
        seed: u64,
        fault_seed: u64,
        groups in 1usize..=3,
        workers in 1usize..=3,
        shards in 1usize..=2,
        timeout_pct in 0u32..=25,
        outage_permille in 0u32..=20,
        torn_poll_pct in 0u32..=50,
        cas_storm_pct in 0u32..=25,
    ) {
        let mut sizes = vec![0usize; groups];
        for (i, s) in sizes.iter_mut().enumerate() {
            *s = 2 + (seed as usize >> (4 * i)) % 5;
        }
        let expected = baseline_migrated(&sizes, shards, seed);

        let stack = build_stack(&sizes, shards, seed);
        let injector = Arc::new(FaultInjector::new(FaultConfig {
            seed: fault_seed,
            domains: 4,
            timeout_prob: f64::from(timeout_pct) / 100.0,
            outage_prob: f64::from(outage_permille) / 1000.0,
            outage: Duration::from_millis(10),
            torn_poll_prob: f64::from(torn_poll_pct) / 100.0,
            cas_storm_prob: f64::from(cas_storm_pct) / 100.0,
        }));
        let mut scheduler = SweepScheduler::new(FleetConfig {
            workers,
            lease: 3,
            deadline: Duration::from_secs(120),
            max_passes: 64,
            // the schedule keeps firing for the whole run, so allow far
            // more lost leases than the production default
            max_retries: 64,
            ..FleetConfig::default()
        });
        for i in 0..groups {
            scheduler.register(SweepTask::new(
                faulty_sweep_sessions(&stack, &injector, &format!("g{i}"), shards, 0x5a),
                SweepConfig::default(),
            ));
        }
        for i in 0..groups {
            scheduler.arm(i);
        }

        // 1. the run completes and converges under live fault injection
        let report = scheduler.converge_all().unwrap();
        prop_assert!(report.total.converged);
        prop_assert_eq!(report.groups.len(), groups);

        // 2. identical migrated totals to the fault-free baseline
        for (i, &expect) in expected.iter().enumerate() {
            let g = report.group(&format!("g{i}")).unwrap();
            prop_assert!(g.report.converged, "g{} converged", i);
            prop_assert!(
                g.report.migrated == expect,
                "g{} migrated {} objects, fault-free baseline migrated {}",
                i, g.report.migrated, expect
            );
        }

        // a re-queued lease must carry its cause
        let noted = report.leases.iter().filter(|l| l.failure.is_some()).count() as u64;
        prop_assert_eq!(report.retries, noted);

        // 3 + 4, via clean-handle sessions
        injector.heal();
        assert_no_loss_no_leak(&stack, &sizes, shards);
    }
}

/// The crash-safety acceptance case: a sweep worker panics mid-pass (a
/// one-shot fault armed inside the injector), and the fleet must contain
/// it — the unit is re-leased under the same stamp, the run converges,
/// migrated totals equal the fault-free baseline, and nothing is lost.
#[test]
fn a_mid_pass_worker_panic_requeues_the_unit_and_loses_nothing() {
    let sizes = [5usize, 4];
    let shards = 2;
    let seed = 0xc4a5;
    let expected = baseline_migrated(&sizes, shards, seed);

    let stack = build_stack(&sizes, shards, seed);
    // a quiet schedule: the only fault in the run is the armed panic
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 7,
        domains: 4,
        ..FaultConfig::default()
    }));
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 2,
        lease: 2,
        deadline: Duration::from_secs(120),
        ..FleetConfig::default()
    });
    for i in 0..sizes.len() {
        scheduler.register(SweepTask::new(
            faulty_sweep_sessions(&stack, &injector, &format!("g{i}"), shards, 0x5a),
            SweepConfig::default(),
        ));
        scheduler.arm(i);
    }

    // fire a few requests into the first lease's pass: the worker dies
    // between a scan and its migrations, with the pass half-done
    injector.arm_panic(6);
    let report = scheduler.converge_all().unwrap();

    assert_eq!(injector.stats().panics, 1, "the armed panic fired");
    assert!(report.retries >= 1, "the lost lease was re-queued");
    let note = report
        .leases
        .iter()
        .find_map(|l| l.failure.as_ref())
        .expect("the lost lease carries a failure note");
    assert!(
        note.contains("panic"),
        "failure note names the panic: {note}"
    );

    // the fleet still converges to exactly the fault-free totals
    assert!(report.total.converged);
    for (i, &expect) in expected.iter().enumerate() {
        let g = report.group(&format!("g{i}")).unwrap();
        assert!(g.report.converged, "g{i} converged despite the panic");
        assert_eq!(g.report.migrated, expect, "g{i} migrated total");
    }
    assert_no_loss_no_leak(&stack, &sizes, shards);
}

/// A store that never recovers must not wedge the run: with every request
/// refused, the unit burns its retry budget, retires unconverged, and
/// `converge_all` still returns (with the failure on the record) instead
/// of spinning or aborting.
#[test]
fn a_dead_store_retires_the_unit_instead_of_wedging_the_run() {
    let sizes = [3usize];
    let shards = 1;
    let stack = build_stack(&sizes, shards, 0x0dd);
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 3,
        domains: 1,
        timeout_prob: 1.0, // every request fails, forever
        ..FaultConfig::default()
    }));
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 2,
        max_retries: 3,
        deadline: Duration::from_secs(120),
        ..FleetConfig::default()
    });
    scheduler.register(SweepTask::new(
        faulty_sweep_sessions(&stack, &injector, "g0", shards, 0x5a),
        SweepConfig::default(),
    ));
    scheduler.arm(0);

    let report = scheduler.converge_all().unwrap();
    assert!(!report.total.converged, "a dead store cannot converge");
    let g = report.group("g0").unwrap();
    assert!(!g.report.converged);
    assert_eq!(
        g.retries, 4,
        "max_retries lost leases, then the capping one"
    );
    assert!(report.leases.iter().any(|l| l.failure.is_some()));

    // the objects are merely stale, not lost: heal and re-run
    injector.heal();
    scheduler.arm(0);
    let report = scheduler.converge_all().unwrap();
    assert!(report.total.converged, "recovery converges the backlog");
    assert_no_loss_no_leak(&stack, &sizes, shards);
}

// --- live shard resizing under faults -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// A live 4→8 shard resize in the middle of a faulted sweep: outages,
    /// timeouts, torn polls, and CAS storms keep striking the sweep
    /// sessions while folders cut over to new owners on a clean handle.
    /// The fleet must still converge to the fault-free baseline with zero
    /// lost objects and zero revoked-member leakage.
    #[test]
    fn a_live_resize_under_faults_converges_with_zero_loss(
        seed: u64,
        fault_seed: u64,
        workers in 1usize..=2,
        timeout_pct in 0u32..=20,
        outage_permille in 0u32..=15,
        torn_poll_pct in 0u32..=30,
        cas_storm_pct in 0u32..=20,
    ) {
        let groups = 2usize;
        let shards = 2usize;
        let mut sizes = vec![0usize; groups];
        for (i, s) in sizes.iter_mut().enumerate() {
            *s = 2 + (seed as usize >> (4 * i)) % 4;
        }
        let expected = baseline_migrated(&sizes, shards, seed);

        let sharded = ShardedStore::new(4);
        let stack = build_stack_on(sharded.clone().into(), &sizes, shards, seed);
        let injector = Arc::new(FaultInjector::new(FaultConfig {
            seed: fault_seed,
            domains: 4,
            timeout_prob: f64::from(timeout_pct) / 100.0,
            outage_prob: f64::from(outage_permille) / 1000.0,
            outage: Duration::from_millis(10),
            torn_poll_prob: f64::from(torn_poll_pct) / 100.0,
            cas_storm_prob: f64::from(cas_storm_pct) / 100.0,
        }));
        let mut scheduler = SweepScheduler::new(FleetConfig {
            workers,
            lease: 3,
            deadline: Duration::from_secs(120),
            max_passes: 64,
            // fault schedule plus route cutovers: allow plenty of lost
            // leases before declaring a unit stuck
            max_retries: 64,
            ..FleetConfig::default()
        });
        for i in 0..groups {
            scheduler.register(SweepTask::new(
                faulty_sweep_sessions(&stack, &injector, &format!("g{i}"), shards, 0x5a),
                SweepConfig::default(),
            ));
        }
        for i in 0..groups {
            scheduler.arm(i);
        }

        // the resize lands mid-run, migrating live folders out from under
        // the sweeps
        let resizer = {
            let sharded = sharded.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                sharded.resize(8)
            })
        };
        let report = scheduler.converge_all().unwrap();
        let resize = resizer.join().unwrap();

        prop_assert_eq!(resize.from, 4);
        prop_assert_eq!(resize.to, 8);
        prop_assert_eq!(sharded.shard_count(), 8);
        prop_assert!(report.total.converged);
        for (i, &expect) in expected.iter().enumerate() {
            let g = report.group(&format!("g{i}")).unwrap();
            prop_assert!(g.report.converged, "g{} converged across the resize", i);
            prop_assert!(
                g.report.migrated == expect,
                "g{} migrated {} objects, fault-free baseline migrated {}",
                i, g.report.migrated, expect
            );
        }

        injector.heal();
        assert_no_loss_no_leak(&stack, &sizes, shards);
    }
}

/// The deterministic resize acceptance case: grow 4→8 mid-sweep under a
/// light timeout schedule, converge, verify; then shrink 8→3 after the
/// run and verify again. Both directions of the routing change preserve
/// every byte and every access decision, and the per-shard metric
/// snapshots follow the live shard set.
#[test]
fn resize_grow_then_shrink_preserves_objects_and_access() {
    let sizes = [5usize, 4];
    let shards = 2;
    let seed = 0x5e1f;
    let expected = baseline_migrated(&sizes, shards, seed);

    let sharded = ShardedStore::new(4);
    let stack = build_stack_on(sharded.clone().into(), &sizes, shards, seed);
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed: 11,
        domains: 4,
        timeout_prob: 0.10,
        ..FaultConfig::default()
    }));
    let mut scheduler = SweepScheduler::new(FleetConfig {
        workers: 2,
        lease: 2,
        deadline: Duration::from_secs(120),
        max_retries: 64,
        ..FleetConfig::default()
    });
    for i in 0..sizes.len() {
        scheduler.register(SweepTask::new(
            faulty_sweep_sessions(&stack, &injector, &format!("g{i}"), shards, 0x5a),
            SweepConfig::default(),
        ));
        scheduler.arm(i);
    }

    let resizer = {
        let sharded = sharded.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            sharded.resize(8)
        })
    };
    let report = scheduler.converge_all().unwrap();
    let grow = resizer.join().unwrap();
    assert_eq!((grow.from, grow.to), (4, 8));
    assert_eq!(sharded.shard_count(), 8);
    assert_eq!(sharded.per_shard_metrics().len(), 8);

    assert!(report.total.converged);
    for (i, &expect) in expected.iter().enumerate() {
        let g = report.group(&format!("g{i}")).unwrap();
        assert!(g.report.converged, "g{i} converged across the grow");
        assert_eq!(g.report.migrated, expect, "g{i} migrated total");
    }
    injector.heal();
    assert_no_loss_no_leak(&stack, &sizes, shards);

    // the shrink retires five shards and drains them into the survivors
    let shrink = sharded.resize(3);
    assert_eq!((shrink.from, shrink.to), (8, 3));
    assert_eq!(sharded.shard_count(), 3);
    assert_eq!(sharded.per_shard_metrics().len(), 3);
    assert!(shrink.relocated > 0, "retired shards held folders to move");
    assert_no_loss_no_leak(&stack, &sizes, shards);
}

// --- pipelined writer under faults ---------------------------------------

/// One group of three members plus the service identities — the pipelined
/// fault cases need a writable group, not the full multi-group stack.
fn writer_fixture(seed: u64) -> FleetFixture {
    FleetFixture::new(
        CloudStore::new(),
        PartitionSize::new(2).unwrap(),
        &[(
            "g0".to_string(),
            (0..3).map(|m| format!("g0-u{m}")).collect(),
        )],
        &[WRITER.to_string(), SWEEPER.to_string()],
        seed,
    )
    .unwrap()
}

/// A pipelined writer whose every store request rolls `injector`'s
/// schedule, while the fixture's admin keeps a clean handle.
fn pipelined_writer(
    fixture: &FleetFixture,
    injector: &Arc<FaultInjector>,
    window: usize,
    retry: RetryPolicy,
) -> PipelinedSession {
    let clean = fixture.admin().store().clone();
    let faulty: StoreHandle = FaultyStore::with_injector(clean, Arc::clone(injector)).into();
    let session = fleet_session_on(fixture, faulty, WRITER, "g0", 1, 0x9a).with_retry_policy(retry);
    PipelinedSession::new(session, window)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Request-level faults striking mid-window (timeouts, spurious CAS
    /// conflicts, torn polls) never lose or duplicate a completed
    /// pipelined write: the retry budget absorbs the schedule, the
    /// writes/coalesced accounting matches the enqueued ops exactly, and
    /// a clean serial session reads every object's final payload.
    #[test]
    fn pipelined_writes_survive_request_level_faults(
        seed: u64,
        fault_seed: u64,
        timeout_pct in 0u32..=8,
        cas_storm_pct in 0u32..=12,
        torn_poll_pct in 0u32..=50,
    ) {
        const OBJECTS: usize = 6;
        const ROUNDS: usize = 3;
        let fixture = writer_fixture(seed);
        let injector = Arc::new(FaultInjector::new(FaultConfig {
            seed: fault_seed,
            domains: 1,
            timeout_prob: f64::from(timeout_pct) / 100.0,
            cas_storm_prob: f64::from(cas_storm_pct) / 100.0,
            torn_poll_prob: f64::from(torn_poll_pct) / 100.0,
            ..FaultConfig::default()
        }));
        let retry = RetryPolicy { attempts: 6, backoff: Duration::from_millis(1) };
        let mut p = pipelined_writer(&fixture, &injector, 4, retry);
        for r in 0..ROUNDS {
            for o in 0..OBJECTS {
                p.write(&format!("obj-{o:03}"), format!("{o}@{r}").as_bytes()).unwrap();
            }
        }
        p.flush().unwrap();
        let m = p.metrics();
        prop_assert_eq!(m.writes + m.coalesced_writes, (OBJECTS * ROUNDS) as u64);
        prop_assert!(injector.stats().requests > 0);

        injector.heal();
        let mut verifier = fleet_session(&fixture, WRITER, "g0", 1, 0xfee1);
        for o in 0..OBJECTS {
            prop_assert_eq!(
                verifier.read(&format!("obj-{o:03}")).unwrap(),
                format!("{o}@{}", ROUNDS - 1).into_bytes()
            );
        }
    }
}

#[test]
fn a_forced_outage_mid_window_loses_no_write() {
    let fixture = writer_fixture(0xace);
    let injector = Arc::new(FaultInjector::new(FaultConfig::default()));
    let retry = RetryPolicy {
        attempts: 4,
        backoff: Duration::from_millis(10),
    };
    let mut p = pipelined_writer(&fixture, &injector, 4, retry);

    // a completed write before the outage — must survive untouched
    p.write("obj-000", b"pre-outage").unwrap();
    p.flush().unwrap();

    // everything submitted during the outage fails at submission and
    // retries on the 10/20/40ms backoff schedule, which outlasts it
    injector.force_outage(0, Duration::from_millis(25));
    for o in 0..4 {
        p.write(&format!("obj-{o:03}"), format!("final-{o}").as_bytes())
            .unwrap();
    }
    p.flush().unwrap();
    injector.heal();

    let m = p.metrics();
    assert_eq!(m.writes + m.coalesced_writes, 5);
    let mut verifier = fleet_session(&fixture, WRITER, "g0", 1, 0xfee2);
    for o in 0..4 {
        assert_eq!(
            verifier.read(&format!("obj-{o:03}")).unwrap(),
            format!("final-{o}").into_bytes(),
            "write lost across the outage"
        );
    }
}
