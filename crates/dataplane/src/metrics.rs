//! Data-plane counters: the numbers the lazy-vs-eager argument is made of.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by a session and any sweeper driving it.
#[derive(Debug, Default)]
pub struct DataMetrics {
    writes: AtomicU64,
    reads: AtomicU64,
    old_epoch_reads: AtomicU64,
    migrations: AtomicU64,
    write_conflicts: AtomicU64,
    migration_conflicts: AtomicU64,
    key_refreshes: AtomicU64,
    coalesced_writes: AtomicU64,
}

/// A point-in-time snapshot of [`DataMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataMetricsSnapshot {
    /// Successful application writes (each seals at the current epoch, so
    /// every write is also an implicit lazy re-encryption of its object).
    pub writes: u64,
    /// Successful reads.
    pub reads: u64,
    /// Reads served from an epoch older than the ring's current one — the
    /// lazy window in action (zero under the eager policy once a sweep
    /// completes).
    pub old_epoch_reads: u64,
    /// Objects the sweeper re-encrypted to the current epoch. The lazy
    /// acceptance criterion is that a revoking batch itself contributes
    /// **zero** here and to `writes`.
    pub migrations: u64,
    /// Application writes that lost the CAS race.
    pub write_conflicts: u64,
    /// Sweeper migrations that lost the CAS race to a concurrent writer
    /// (benign: the winner sealed at the current epoch anyway).
    pub migration_conflicts: u64,
    /// Times the session rebuilt its epoch key ring from the cloud.
    pub key_refreshes: u64,
    /// Writes a [`crate::PipelinedSession`] merged into a queued write to
    /// the same object before submission (last-write-wins) — requests the
    /// pipeline saved versus a serial session. Always zero for serial
    /// sessions and at `max_inflight == 1`.
    pub coalesced_writes: u64,
}

impl DataMetricsSnapshot {
    /// Field-wise sum of two snapshots — how a [`crate::SweepPool`] merges
    /// its workers' counters into one view.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            writes: self.writes + other.writes,
            reads: self.reads + other.reads,
            old_epoch_reads: self.old_epoch_reads + other.old_epoch_reads,
            migrations: self.migrations + other.migrations,
            write_conflicts: self.write_conflicts + other.write_conflicts,
            migration_conflicts: self.migration_conflicts + other.migration_conflicts,
            key_refreshes: self.key_refreshes + other.key_refreshes,
            coalesced_writes: self.coalesced_writes + other.coalesced_writes,
        }
    }
}

impl telemetry::Counters for DataMetricsSnapshot {
    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("writes", self.writes),
            ("reads", self.reads),
            ("old_epoch_reads", self.old_epoch_reads),
            ("migrations", self.migrations),
            ("write_conflicts", self.write_conflicts),
            ("migration_conflicts", self.migration_conflicts),
            ("key_refreshes", self.key_refreshes),
            ("coalesced_writes", self.coalesced_writes),
        ]
    }
}

/// Fleet-level counters with per-group attribution: the aggregate across
/// every group a [`crate::SweepScheduler`] serves, plus each group's own
/// slice — so fleet benches and tests can assert who did what without
/// parsing logs.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Field-wise sum over every group's sweep sessions.
    pub total: DataMetricsSnapshot,
    /// Per-group breakdown, keyed by group label in task-registration
    /// order. Each entry sums only that group's unit sessions, so it
    /// covers exactly the work the scheduler drove for that group.
    pub by_group: Vec<(String, DataMetricsSnapshot)>,
}

impl FleetMetrics {
    /// The snapshot attributed to `group`, if registered.
    pub fn group(&self, group: &str) -> Option<&DataMetricsSnapshot> {
        self.by_group
            .iter()
            .find(|(g, _)| g == group)
            .map(|(_, m)| m)
    }
}

impl telemetry::Counters for FleetMetrics {
    /// The fleet-wide aggregate — per-group slices stay on
    /// [`FleetMetrics::by_group`].
    fn counters(&self) -> Vec<(&'static str, u64)> {
        self.total.counters()
    }
}

impl DataMetrics {
    pub(crate) fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self, old_epoch: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if old_epoch {
            self.old_epoch_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_migration(&self) {
        self.migrations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write_conflict(&self) {
        self.write_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_migration_conflict(&self) {
        self.migration_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_key_refresh(&self) {
        self.key_refreshes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_coalesced_write(&self) {
        self.coalesced_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> DataMetricsSnapshot {
        DataMetricsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            old_epoch_reads: self.old_epoch_reads.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            write_conflicts: self.write_conflicts.load(Ordering::Relaxed),
            migration_conflicts: self.migration_conflicts.load(Ordering::Relaxed),
            key_refreshes: self.key_refreshes.load(Ordering::Relaxed),
            coalesced_writes: self.coalesced_writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let m = DataMetrics::default();
        m.record_write();
        m.record_read(false);
        m.record_read(true);
        m.record_migration();
        m.record_write_conflict();
        m.record_migration_conflict();
        m.record_key_refresh();
        m.record_coalesced_write();
        let s = m.snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.old_epoch_reads, 1);
        assert_eq!(s.migrations, 1);
        assert_eq!(s.write_conflicts, 1);
        assert_eq!(s.migration_conflicts, 1);
        assert_eq!(s.key_refreshes, 1);
        assert_eq!(s.coalesced_writes, 1);
    }
}
