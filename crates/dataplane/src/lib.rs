//! # dataplane — the envelope-encrypted read/write path over IBBE-SGX
//!
//! The control plane (crates `core` + `acs`) derives, rotates and publishes
//! group keys; this crate is the path those keys exist *for*: storing and
//! fetching data objects on the untrusted cloud.
//!
//! * [`SealedObject`] — envelope encryption: every object gets a random
//!   per-object DEK (AES-256-GCM), wrapped under a KEK derived from the
//!   group key of one specific **epoch**; both layers AAD-bind the object
//!   name and epoch.
//! * [`ClientSession`] — a member's read/write session with an epoch-aware
//!   key ring (current `gk` + retired keys unlocked from the published
//!   history), invalidated by the cloud store's long-poll notifications;
//!   writes are compare-and-swap PUTs, so concurrent writers are safe.
//! * [`Sweeper`] — the **lazy** re-encryption policy's convergence engine:
//!   revocation touches zero objects, each object migrates on its next
//!   write, and the sweeper moves the cold tail within a configured
//!   deadline. [`SweepPool`] splits that work one worker per data shard
//!   (see [`data_shard_folder`]) and drives the shards concurrently, so
//!   convergence time drops roughly by the shard factor on a
//!   `ShardedStore`.
//! * [`SweepScheduler`] — fleet-scale lazy revocation: a fixed pool of W
//!   workers serves G registered groups' [`SweepTask`]s, leasing
//!   per-folder [`SweepPass`] steps in staleness-priority order (the group
//!   furthest behind its lazy-window deadline runs first) and re-arming
//!   idle groups from long-poll notifications. The `fleet_sweep` bench
//!   binary compares it against G dedicated pools.
//! * [`RevocationCoordinator`] — applies membership batches under a
//!   [`ReencryptionPolicy`]: `Lazy` (O(1) revocation, bounded stale window)
//!   or `Eager` (O(n) synchronous sweep at revocation time). The
//!   `lazy_vs_eager` bench binary measures the two against each other.
//! * [`RwSystemBackend`] — the full stack as a replay backend for the
//!   `workloads` read/write traces.
//!
//! ```
//! use acs::Admin;
//! use cloud_store::CloudStore;
//! use dataplane::ClientSession;
//! use ibbe_sgx_core::{GroupEngine, PartitionSize};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::thread_rng();
//! let store = CloudStore::new();
//! let engine = GroupEngine::bootstrap(PartitionSize::new(4)?, &mut rng)?;
//! let admin = Admin::new(engine, store.clone());
//! admin.create_group("demo", vec!["alice".into(), "bob".into()])?;
//!
//! let usk = admin.engine().extract_user_key("alice")?;
//! let pk = admin.engine().public_key().clone();
//! let mut alice = ClientSession::new("alice", usk, pk, store, "demo");
//! alice.write("notes.txt", b"meet at dawn")?;
//! assert_eq!(alice.read("notes.txt")?, b"meet at dawn");
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod envelope;
pub mod error;
pub mod fixtures;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod replay;
pub mod scheduler;
pub mod session;
pub mod sweeper;

pub use coordinator::{ReencryptionPolicy, RevocationCoordinator, RevocationOutcome};
pub use envelope::{SealedObject, OBJECT_FORMAT_V1};
pub use error::DataError;
pub use metrics::{DataMetrics, DataMetricsSnapshot, FleetMetrics};
pub use pipeline::{OpClass, OpSample, PipelinedSession, ReadHandle};
pub use pool::SweepPool;
pub use replay::{ReplayError, RwSystemBackend, RwSystemConfig, SWEEPER_IDENTITY, WRITER_IDENTITY};
pub use scheduler::{
    FleetConfig, FleetReport, GroupSweepReport, LeaseRecord, SweepScheduler, SweepTask, TaskId,
};
pub use session::{data_folder, data_shard_folder, ClientSession, RetryPolicy};
pub use sweeper::{SweepConfig, SweepDriver, SweepPass, SweepReport, Sweeper};
