//! [`PipelinedSession`]: a bounded in-flight window of store requests
//! over a [`ClientSession`].
//!
//! A serial session's throughput is capped at one round-trip time per
//! operation, no matter how many shards the store has — `sweep_scaling`'s
//! rw section measured exactly that (flat ~760 ops/s from 1 to 8 shards).
//! The pipelined session keeps up to `max_inflight` requests outstanding
//! through [`cloud_store::ObjectStore::submit`], so per-session
//! throughput scales with the number of independent store lanes
//! (shards × [`cloud_store::SUBMIT_LANES`]) instead of the round-trip
//! time.
//!
//! Observational equivalence with the serial session is the design
//! invariant, enforced by three ordering rules:
//!
//! 1. **Per-object total order.** At most one request per object is ever
//!    in flight; a second write to a busy object waits in the submission
//!    queue, and a read of a busy object drains the object's in-flight
//!    request first. Cross-object reordering is allowed — it is not
//!    observable through plaintext reads.
//! 2. **Program-order reads.** A read of an object with a *queued*
//!    (not yet submitted) write returns that write's payload directly: the
//!    value a serial session would have stored and fetched back.
//! 3. **Serial degeneration.** At `max_inflight == 1` the queue never
//!    holds a second entry, so no write is ever coalesced and every
//!    request completes before the next is submitted — the exact request
//!    count and per-shard order of a serial session.
//!
//! Writes still queued when another write to the same object arrives are
//! **coalesced** (last-write-wins before submission — both payloads were
//! doomed to be overwritten in order anyway); the CAS expectation is
//! stamped at submission and re-stamped from each completion, and a lost
//! CAS retries with the surviving payload at the winner's version.
//! Epoch semantics follow the serial session: every enqueue runs the same
//! zero-timeout invalidation check, and an observed rotation drains the
//! window so queued writes seal under the new ring at submission.

use crate::envelope::SealedObject;
use crate::error::DataError;
use crate::metrics::DataMetricsSnapshot;
use crate::session::ClientSession;
use cloud_store::{Request, Response, StoreError, StoreTicket};
use exec::Waker;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// CAS-conflict retries per pipelined write before it fails — the same
/// bound (and rationale) as the replay backend's serial retry loop.
const CONFLICT_RETRIES: u32 = 4;

/// How long one wait-for-completion sleep lasts before re-scanning the
/// window. Purely a liveness backstop: the waker wakes the session the
/// moment any ticket completes.
const REAP_SLICE: Duration = Duration::from_millis(50);

/// The operation class of an [`OpSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A pipelined write (enqueue → CAS completion processed).
    Write,
    /// A pipelined read (begin → payload decrypted).
    Read,
}

/// One completed operation's latency, recorded when the session was built
/// [`PipelinedSession::with_op_log`]. For a coalesced write the earliest
/// enqueue wins: the sample spans from the first merged `write()` call to
/// the surviving request's completion.
#[derive(Debug, Clone, Copy)]
pub struct OpSample {
    /// Which op class completed.
    pub class: OpClass,
    /// Enqueue-to-completion latency.
    pub latency: Duration,
}

/// A not-yet-submitted write, coalescing-eligible until it goes out.
struct QueuedWrite {
    plaintext: Vec<u8>,
    enqueued: Instant,
    /// Telemetry request id minted at enqueue — adopted at submission (and
    /// on every retry) so the eventual store request joins the chain of
    /// the `write()` call that queued it.
    rid: u64,
}

enum InflightKind {
    /// The payload is kept so a lost CAS can retry with the surviving
    /// (possibly coalesced) plaintext at the winner's version.
    Write {
        plaintext: Vec<u8>,
    },
    Read,
}

struct InflightOp {
    id: u64,
    object: String,
    kind: InflightKind,
    ticket: StoreTicket,
    enqueued: Instant,
    conflicts: u32,
    transients: u32,
    /// Telemetry request id of the originating `write()`/`read_begin()`,
    /// re-adopted when a retry submits a fresh store request.
    rid: u64,
}

/// A finished read, parked until its [`ReadHandle`] is waited on.
struct DoneRead {
    object: String,
    enqueued: Instant,
    result: Result<Option<(bytes::Bytes, u64)>, StoreError>,
}

enum ReadState {
    /// Served from a queued (unsubmitted) write — rule 2 above.
    Local {
        object: String,
        plaintext: Vec<u8>,
        enqueued: Instant,
    },
    /// A submitted GET, identified by its in-flight id.
    Inflight(u64),
}

/// The handle [`PipelinedSession::read_begin`] returns; redeem it with
/// [`PipelinedSession::read_wait`]. Every handle should be waited on —
/// an abandoned handle's completed GET is simply discarded on drop.
pub struct ReadHandle(ReadState);

impl core::fmt::Debug for ReadHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.0 {
            ReadState::Local { object, .. } => write!(f, "ReadHandle(local {object})"),
            ReadState::Inflight(id) => write!(f, "ReadHandle(inflight #{id})"),
        }
    }
}

/// A pipelined wrapper around a [`ClientSession`] (see the module docs
/// for the ordering rules). Drop flushes best-effort; call
/// [`PipelinedSession::flush`] to observe drain errors.
pub struct PipelinedSession {
    inner: ClientSession,
    window: usize,
    /// Submission order of `queued` (unique object names).
    queue: VecDeque<String>,
    /// Unsubmitted writes by object — the coalescing buffer.
    queued: HashMap<String, QueuedWrite>,
    inflight: Vec<InflightOp>,
    /// Completed GETs waiting for their handles.
    done_reads: HashMap<u64, DoneRead>,
    waker: Arc<Waker>,
    next_id: u64,
    op_log: Option<Vec<OpSample>>,
}

impl PipelinedSession {
    /// Wraps `inner` with an in-flight window of `max_inflight` requests
    /// (clamped to at least 1; 1 degenerates to exactly serial
    /// semantics).
    #[must_use]
    pub fn new(inner: ClientSession, max_inflight: usize) -> Self {
        Self {
            inner,
            window: max_inflight.max(1),
            queue: VecDeque::new(),
            queued: HashMap::new(),
            inflight: Vec::new(),
            done_reads: HashMap::new(),
            waker: Arc::new(Waker::new()),
            next_id: 0,
            op_log: None,
        }
    }

    /// Enables per-operation latency sampling (see
    /// [`PipelinedSession::take_op_log`]).
    #[must_use]
    pub fn with_op_log(mut self) -> Self {
        self.op_log = Some(Vec::new());
        self
    }

    /// Takes the samples recorded so far (empty unless built
    /// [`PipelinedSession::with_op_log`]).
    pub fn take_op_log(&mut self) -> Vec<OpSample> {
        self.op_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The in-flight window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Writes queued but not yet submitted (coalescing-eligible).
    pub fn queued_writes(&self) -> usize {
        self.queue.len()
    }

    /// The wrapped session's counters.
    pub fn metrics(&self) -> DataMetricsSnapshot {
        self.inner.metrics()
    }

    /// The wrapped serial session, for diagnostics and post-run reads.
    /// Drains the pipeline first (best-effort — use
    /// [`PipelinedSession::flush`] to observe drain errors), so the
    /// borrow never races queued work.
    pub fn session_mut(&mut self) -> &mut ClientSession {
        let _ = self.flush();
        &mut self.inner
    }

    /// Read-only view of the wrapped session.
    pub fn session(&self) -> &ClientSession {
        &self.inner
    }

    /// Enqueues a write of `plaintext` as `object`. Returns once the
    /// write is queued or submitted — its CAS completes asynchronously;
    /// a completion failure surfaces from the call that processes it
    /// (a later write, a read, or [`PipelinedSession::flush`]).
    ///
    /// # Errors
    /// Epoch-refresh failures, or a failure of some *earlier* operation
    /// whose completion was processed while making room in the window.
    pub fn write(&mut self, object: &str, plaintext: &[u8]) -> Result<(), DataError> {
        let _rid = telemetry::request_scope();
        self.observe_epoch()?;
        if let Some(queued) = self.queued.get_mut(object) {
            // still unsubmitted: last-write-wins, one request saved
            queued.plaintext = plaintext.to_vec();
            self.inner.metrics_ref().record_coalesced_write();
            return Ok(());
        }
        self.queue.push_back(object.to_string());
        self.queued.insert(
            object.to_string(),
            QueuedWrite {
                plaintext: plaintext.to_vec(),
                enqueued: Instant::now(),
                rid: telemetry::current_request_id(),
            },
        );
        self.pump()?;
        // backpressure: never hold more unsubmitted writes than the
        // window (at window=1 this drains the queue entirely, which is
        // what makes coalescing impossible there)
        while self.queue.len() >= self.window {
            self.wait_for_progress()?;
            self.pump()?;
        }
        Ok(())
    }

    /// Synchronous read: [`PipelinedSession::read_begin`] followed by
    /// [`PipelinedSession::read_wait`].
    ///
    /// # Errors
    /// As for the two halves.
    pub fn read(&mut self, object: &str) -> Result<Vec<u8>, DataError> {
        let handle = self.read_begin(object)?;
        self.read_wait(handle)
    }

    /// Starts a pipelined read of `object`, returning a handle to redeem
    /// with [`PipelinedSession::read_wait`]. A read of an object with a
    /// queued write is served from that write's payload (program order);
    /// a read of an object with an in-flight request drains that request
    /// first (per-object total order).
    ///
    /// # Errors
    /// Epoch-refresh failures, or a failure of an earlier operation
    /// processed while draining.
    pub fn read_begin(&mut self, object: &str) -> Result<ReadHandle, DataError> {
        let _rid = telemetry::request_scope();
        self.observe_epoch()?;
        if let Some(queued) = self.queued.get(object) {
            return Ok(ReadHandle(ReadState::Local {
                object: object.to_string(),
                plaintext: queued.plaintext.clone(),
                enqueued: Instant::now(),
            }));
        }
        self.drain_object(object)?;
        while self.inflight.len() >= self.window {
            self.wait_for_progress()?;
            self.pump()?;
        }
        let folder = self.inner.folder_of(object).to_string();
        let ticket = self
            .inner
            .store()
            .submit(Request::get(folder, object.to_string()));
        let id = self.push_inflight(
            object.to_string(),
            InflightKind::Read,
            ticket,
            Instant::now(),
        );
        Ok(ReadHandle(ReadState::Inflight(id)))
    }

    /// Completes a read started with [`PipelinedSession::read_begin`]:
    /// waits for the GET, records the observed version, and decrypts
    /// with the serial read path's refresh-once semantics.
    ///
    /// # Errors
    /// [`DataError::NotFound`], [`DataError::UnknownEpoch`],
    /// [`DataError::AuthFailed`] — the serial read contract — plus any
    /// failure of an earlier operation processed while waiting.
    pub fn read_wait(&mut self, handle: ReadHandle) -> Result<Vec<u8>, DataError> {
        match handle.0 {
            ReadState::Local {
                object: _,
                plaintext,
                enqueued,
            } => {
                // the value a serial session would have stored and read
                // back; sealed/openable at the current epoch by
                // construction
                self.inner.metrics_ref().record_read(false);
                self.log_op(OpClass::Read, enqueued);
                Ok(plaintext)
            }
            ReadState::Inflight(id) => {
                while !self.done_reads.contains_key(&id) {
                    self.wait_for_progress()?;
                }
                let done = self.done_reads.remove(&id).expect("just observed");
                let object = done.object;
                match done.result {
                    Ok(Some((bytes, version))) => {
                        self.inner.note_version(&object, version);
                        let sealed = SealedObject::from_bytes(&bytes)?;
                        let plaintext = self.inner.open_sealed(&object, &sealed)?;
                        self.log_op(OpClass::Read, done.enqueued);
                        Ok(plaintext)
                    }
                    Ok(None) => {
                        self.inner.forget_version(&object);
                        Err(DataError::NotFound(object))
                    }
                    Err(e) => Err(e.into()),
                }
            }
        }
    }

    /// Drains every queued and in-flight request; returns once the
    /// pipeline is empty.
    ///
    /// # Errors
    /// The first completion failure encountered while draining (later
    /// requests keep draining on the next call / on drop).
    pub fn flush(&mut self) -> Result<(), DataError> {
        loop {
            self.pump()?;
            if self.queue.is_empty() && self.inflight.is_empty() {
                return Ok(());
            }
            self.wait_for_progress()?;
        }
    }

    // --- internals --------------------------------------------------------

    /// The serial session's pre-operation invalidation check, plus the
    /// pipelined addition: when the check observes a rotation, the
    /// in-flight window is drained, so everything still queued seals
    /// under the new ring at submission. Store routing-epoch bumps (an
    /// online shard resize) ride the same check — the inner session
    /// marks its cached versions route-stale, and any write whose
    /// expectation was re-stamped by a migration loses its CAS once and
    /// self-heals through the normal conflict adopt-and-resubmit path.
    fn observe_epoch(&mut self) -> Result<(), DataError> {
        let before = self.inner.current_epoch();
        self.inner.maybe_refresh()?;
        if self.inner.current_epoch() != before {
            self.drain_inflight()?;
        }
        Ok(())
    }

    /// Submits queued writes while the window has room, skipping (not
    /// reordering past) objects that already have a request in flight.
    fn pump(&mut self) -> Result<(), DataError> {
        let mut i = 0;
        while self.inflight.len() < self.window && i < self.queue.len() {
            if self.object_in_flight(&self.queue[i]) {
                // per-object order: this write waits for the in-flight
                // request; later queued objects may still go out
                i += 1;
                continue;
            }
            let object = self.queue.remove(i).expect("index checked");
            let queued = self.queued.remove(&object).expect("queue/queued agree");
            self.submit_write(object, queued.plaintext, queued.enqueued, 0, 0, queued.rid)?;
        }
        Ok(())
    }

    /// Seals under the *current* ring and submits one CAS write under the
    /// originating `write()`'s request id.
    fn submit_write(
        &mut self,
        object: String,
        plaintext: Vec<u8>,
        enqueued: Instant,
        conflicts: u32,
        transients: u32,
        rid: u64,
    ) -> Result<(), DataError> {
        let _rid = telemetry::adopt_request_id(rid);
        let sealed = self.inner.seal_object(&object, &plaintext)?;
        let expected = self.inner.expected_version(&object);
        let folder = self.inner.folder_of(&object).to_string();
        let ticket = self.inner.store().submit(Request::put_if_version(
            folder,
            object.clone(),
            sealed.to_bytes(),
            expected,
        ));
        let id = self.push_inflight(object, InflightKind::Write { plaintext }, ticket, enqueued);
        let op = self
            .inflight
            .iter_mut()
            .find(|op| op.id == id)
            .expect("just pushed");
        op.conflicts = conflicts;
        op.transients = transients;
        Ok(())
    }

    fn push_inflight(
        &mut self,
        object: String,
        kind: InflightKind,
        ticket: StoreTicket,
        enqueued: Instant,
    ) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        ticket.on_complete(Arc::clone(&self.waker));
        self.inflight.push(InflightOp {
            id,
            object,
            kind,
            ticket,
            enqueued,
            conflicts: 0,
            transients: 0,
            rid: telemetry::current_request_id(),
        });
        telemetry::event("pipeline.window")
            .with("inflight", self.inflight.len())
            .with("queued", self.queue.len())
            .with("window", self.window)
            .emit();
        id
    }

    fn object_in_flight(&self, object: &str) -> bool {
        self.inflight.iter().any(|op| op.object == object)
    }

    /// Blocks until the request in flight for `object` (if any) has been
    /// processed — the read path's per-object ordering barrier.
    fn drain_object(&mut self, object: &str) -> Result<(), DataError> {
        while self.object_in_flight(object) {
            self.wait_for_progress()?;
        }
        Ok(())
    }

    fn drain_inflight(&mut self) -> Result<(), DataError> {
        while !self.inflight.is_empty() {
            self.wait_for_progress()?;
        }
        Ok(())
    }

    /// Waits (on the waker) until at least one in-flight request has
    /// completed, then processes every completed one. Returns
    /// immediately when nothing is in flight.
    fn wait_for_progress(&mut self) -> Result<(), DataError> {
        loop {
            if self.inflight.is_empty() {
                return Ok(());
            }
            let seen = self.waker.current();
            if self.process_ready()? > 0 {
                return Ok(());
            }
            self.waker.wait_past(seen, REAP_SLICE);
        }
    }

    /// Processes every completed in-flight request (writes may resubmit
    /// themselves on conflict/transient failure — that counts as
    /// processed, the retry is a fresh in-flight entry).
    fn process_ready(&mut self) -> Result<usize, DataError> {
        let mut processed = 0;
        let mut i = 0;
        while i < self.inflight.len() {
            if !self.inflight[i].ticket.is_ready() {
                i += 1;
                continue;
            }
            let op = self.inflight.remove(i);
            processed += 1;
            self.complete_op(op)?;
        }
        Ok(processed)
    }

    fn complete_op(&mut self, op: InflightOp) -> Result<(), DataError> {
        let result = op.ticket.wait(); // ready: does not block
        match op.kind {
            InflightKind::Write { plaintext } => self.complete_write(
                op.object,
                plaintext,
                op.enqueued,
                op.conflicts,
                op.transients,
                op.rid,
                result,
            ),
            InflightKind::Read => match result {
                Err(ref e) if e.is_transient() && op.transients + 1 < self.retry_attempts() => {
                    self.backoff(op.transients);
                    let _rid = telemetry::adopt_request_id(op.rid);
                    let folder = self.inner.folder_of(&op.object).to_string();
                    let ticket = self
                        .inner
                        .store()
                        .submit(Request::get(folder, op.object.clone()));
                    ticket.on_complete(Arc::clone(&self.waker));
                    self.inflight.push(InflightOp {
                        transients: op.transients + 1,
                        ticket,
                        ..op
                    });
                    Ok(())
                }
                result => {
                    self.done_reads.insert(
                        op.id,
                        DoneRead {
                            object: op.object,
                            enqueued: op.enqueued,
                            result: result.map(|response| match response {
                                Response::Get(found) => found,
                                other => unreachable!("GET completed as {other:?}"),
                            }),
                        },
                    );
                    Ok(())
                }
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_write(
        &mut self,
        object: String,
        plaintext: Vec<u8>,
        enqueued: Instant,
        conflicts: u32,
        transients: u32,
        rid: u64,
        result: Result<Response, StoreError>,
    ) -> Result<(), DataError> {
        match result {
            Ok(Response::Put { version }) => {
                self.inner.note_version(&object, version);
                self.inner.metrics_ref().record_write();
                self.log_op(OpClass::Write, enqueued);
                Ok(())
            }
            Ok(other) => unreachable!("CAS completed as {other:?}"),
            Err(StoreError::Conflict(conflict)) => {
                self.inner.metrics_ref().record_write_conflict();
                if conflicts >= CONFLICT_RETRIES {
                    return Err(DataError::Conflict(conflict));
                }
                // adopt the winning version and retry with the surviving
                // payload — the pipelined analogue of the serial
                // fetch-adopt-retry loop
                self.inner.note_version(&object, conflict.current);
                self.submit_write(object, plaintext, enqueued, conflicts + 1, transients, rid)
            }
            Err(e) if e.is_transient() => {
                if transients + 1 >= self.retry_attempts() {
                    return Err(e.into());
                }
                self.backoff(transients);
                self.submit_write(object, plaintext, enqueued, conflicts, transients + 1, rid)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn retry_attempts(&self) -> u32 {
        self.inner.retry_policy().attempts.max(1)
    }

    /// The serial retry policy's doubling backoff, applied before the
    /// `n+1`-th attempt.
    fn backoff(&self, transients_so_far: u32) {
        let base = self.inner.retry_policy().backoff;
        if !base.is_zero() {
            std::thread::sleep(base * 2u32.saturating_pow(transients_so_far));
        }
    }

    fn log_op(&mut self, class: OpClass, enqueued: Instant) {
        if let Some(log) = self.op_log.as_mut() {
            log.push(OpSample {
                class,
                latency: enqueued.elapsed(),
            });
        }
    }
}

impl Drop for PipelinedSession {
    /// Best-effort drain: completed writes are never abandoned with their
    /// versions untracked. Errors are dropped — flush explicitly to see
    /// them.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl core::fmt::Debug for PipelinedSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "PipelinedSession(window {}, {} in flight, {} queued, over {:?})",
            self.window,
            self.inflight.len(),
            self.queue.len(),
            self.inner
        )
    }
}
