//! Revocation coordination: where the control plane's key rotation meets
//! the data plane's re-encryption cost, under a configurable policy.

use crate::error::DataError;
use crate::sweeper::{SweepDriver, SweepReport};
use acs::Admin;
use ibbe_sgx_core::{BatchOutcome, MembershipBatch};

/// When stored objects are moved to a freshly rotated epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReencryptionPolicy {
    /// Revocation touches **zero** stored objects (O(1) in the store size):
    /// each object migrates on its next write, and a background sweeper
    /// bounds the stale window by a deadline. The revoked member may retain
    /// read access to *pre-revocation* data until migration — never to
    /// anything written after.
    Lazy,
    /// Revocation synchronously re-encrypts every stored object (O(n)):
    /// the revoked member loses all access the moment the revocation
    /// returns, at the price of a revocation latency proportional to the
    /// group's data footprint.
    Eager,
}

/// Outcome of a coordinated revocation.
#[derive(Clone, Debug)]
pub struct RevocationOutcome {
    /// The control-plane batch outcome (membership deltas, epoch).
    pub batch: BatchOutcome,
    /// The synchronous sweep's report — `Some` only under
    /// [`ReencryptionPolicy::Eager`] when the batch actually rotated.
    pub sweep: Option<SweepReport>,
}

/// Applies membership batches through an [`Admin`] and enacts the
/// re-encryption policy against any [`SweepDriver`] (a single
/// [`crate::Sweeper`] or a [`crate::SweepPool`]).
pub struct RevocationCoordinator<'a> {
    admin: &'a Admin,
    policy: ReencryptionPolicy,
    compact_history: bool,
}

impl<'a> RevocationCoordinator<'a> {
    /// Couples an admin with a policy.
    pub fn new(admin: &'a Admin, policy: ReencryptionPolicy) -> Self {
        Self {
            admin,
            policy,
            compact_history: false,
        }
    }

    /// Enables epoch-history compaction after converged sweeps: whenever a
    /// sweep driven (or observed) by this coordinator converges, retired
    /// keys below the sweep's floor epoch are pruned from the published
    /// `_epochs` object.
    ///
    /// Only enable this when the sweeper covers the group's **full**
    /// namespace (a single unassigned [`crate::Sweeper`] or a
    /// [`crate::SweepPool`] spanning every data shard): a partial worker's
    /// converged report only vouches for its own shard, and pruning from it
    /// would orphan objects elsewhere.
    #[must_use]
    pub fn with_history_compaction(mut self) -> Self {
        self.compact_history = true;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> ReencryptionPolicy {
        self.policy
    }

    /// Applies `batch` to `group`; if it rotated the key and the policy is
    /// eager, synchronously sweeps every stored object to the new epoch
    /// before returning. Under the lazy policy the revocation itself
    /// performs **zero** object re-writes — drive `sweeper` afterwards
    /// ([`SweepDriver::run_until_converged`] or [`SweepDriver::watch`]) to
    /// converge within its deadline, then hand the report to
    /// [`RevocationCoordinator::compact_after`] to bound the epoch history.
    ///
    /// # Errors
    /// Control-plane failures from the batch; sweep failures (eager only).
    pub fn revoke<S: SweepDriver>(
        &self,
        group: &str,
        batch: &MembershipBatch,
        sweeper: &mut S,
    ) -> Result<RevocationOutcome, DataError> {
        let outcome = self.admin.apply_batch(group, batch)?;
        let sweep = if outcome.gk_rotated && self.policy == ReencryptionPolicy::Eager {
            let report = sweeper.sweep_now()?;
            self.compact_after(group, &report)?;
            Some(report)
        } else {
            None
        };
        Ok(RevocationOutcome {
            batch: outcome,
            sweep,
        })
    }

    /// Prunes the group's epoch-key history below a converged sweep's floor
    /// epoch (no-op unless compaction is enabled, the report converged, and
    /// it scanned something). The lazy policy's companion call after
    /// driving the sweeper by hand.
    ///
    /// # Errors
    /// Control-plane failures from the compaction publish.
    pub fn compact_after(&self, group: &str, report: &SweepReport) -> Result<usize, DataError> {
        if !self.compact_history || !report.converged {
            return Ok(0);
        }
        let Some(floor) = report.min_live_epoch else {
            return Ok(0);
        };
        Ok(self.admin.compact_history(group, floor)?)
    }
}

impl core::fmt::Debug for RevocationCoordinator<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RevocationCoordinator({:?})", self.policy)
    }
}
