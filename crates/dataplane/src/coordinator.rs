//! Revocation coordination: where the control plane's key rotation meets
//! the data plane's re-encryption cost, under a configurable policy.

use crate::error::DataError;
use crate::sweeper::{SweepReport, Sweeper};
use acs::Admin;
use ibbe_sgx_core::{BatchOutcome, MembershipBatch};

/// When stored objects are moved to a freshly rotated epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReencryptionPolicy {
    /// Revocation touches **zero** stored objects (O(1) in the store size):
    /// each object migrates on its next write, and a background sweeper
    /// bounds the stale window by a deadline. The revoked member may retain
    /// read access to *pre-revocation* data until migration — never to
    /// anything written after.
    Lazy,
    /// Revocation synchronously re-encrypts every stored object (O(n)):
    /// the revoked member loses all access the moment the revocation
    /// returns, at the price of a revocation latency proportional to the
    /// group's data footprint.
    Eager,
}

/// Outcome of a coordinated revocation.
#[derive(Clone, Debug)]
pub struct RevocationOutcome {
    /// The control-plane batch outcome (membership deltas, epoch).
    pub batch: BatchOutcome,
    /// The synchronous sweep's report — `Some` only under
    /// [`ReencryptionPolicy::Eager`] when the batch actually rotated.
    pub sweep: Option<SweepReport>,
}

/// Applies membership batches through an [`Admin`] and enacts the
/// re-encryption policy against a [`Sweeper`].
pub struct RevocationCoordinator<'a> {
    admin: &'a Admin,
    policy: ReencryptionPolicy,
}

impl<'a> RevocationCoordinator<'a> {
    /// Couples an admin with a policy.
    pub fn new(admin: &'a Admin, policy: ReencryptionPolicy) -> Self {
        Self { admin, policy }
    }

    /// The active policy.
    pub fn policy(&self) -> ReencryptionPolicy {
        self.policy
    }

    /// Applies `batch` to `group`; if it rotated the key and the policy is
    /// eager, synchronously sweeps every stored object to the new epoch
    /// before returning. Under the lazy policy the revocation itself
    /// performs **zero** object re-writes — drive `sweeper` afterwards
    /// ([`Sweeper::run_until_converged`] or [`Sweeper::watch`]) to converge
    /// within its deadline.
    ///
    /// # Errors
    /// Control-plane failures from the batch; sweep failures (eager only).
    pub fn revoke(
        &self,
        group: &str,
        batch: &MembershipBatch,
        sweeper: &mut Sweeper,
    ) -> Result<RevocationOutcome, DataError> {
        let outcome = self.admin.apply_batch(group, batch)?;
        let sweep = if outcome.gk_rotated && self.policy == ReencryptionPolicy::Eager {
            Some(sweeper.sweep_now()?)
        } else {
            None
        };
        Ok(RevocationOutcome {
            batch: outcome,
            sweep,
        })
    }
}

impl core::fmt::Debug for RevocationCoordinator<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RevocationCoordinator({:?})", self.policy)
    }
}
