//! The reader/writer session: an epoch-aware key cache over the control
//! plane, plus the CAS-guarded object read/write path.

use crate::envelope::SealedObject;
use crate::error::DataError;
use crate::metrics::{DataMetrics, DataMetricsSnapshot};
use acs::{Client, EPOCHS_ITEM};
use cloud_store::{stable_hash64, StoreHandle};
use ibbe::{PublicKey, UserSecretKey};
use ibbe_sgx_core::{KeyHistory, KeyRing};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Cloud folder holding an unsharded group's data objects (distinct from
/// the group's metadata folder so data traffic never wakes control-plane
/// long-pollers and vice versa). Equal to [`data_shard_folder`] with one
/// shard.
pub fn data_folder(group: &str) -> String {
    format!("{group}/data")
}

/// Cloud folder holding data shard `shard` of `of` for `group`. With
/// `of == 1` this is the classic single [`data_folder`]; with more, each
/// shard is its own cloud folder — and therefore, on a
/// [`cloud_store::ShardedStore`], its own version clock, long-poll wait
/// queue and latency domain, which is what lets a
/// [`crate::SweepPool`] drive every shard concurrently.
///
/// # Panics
/// Panics if `shard >= of` or `of == 0`.
pub fn data_shard_folder(group: &str, shard: usize, of: usize) -> String {
    assert!(of >= 1, "at least one data shard is required");
    assert!(shard < of, "shard index out of range");
    if of == 1 {
        data_folder(group)
    } else {
        format!("{group}/data-{shard:02}")
    }
}

/// True for the error signature of a ring rebuild that raced a rotation's
/// publish (partition and history read on opposite sides of it).
fn torn_read(e: &DataError) -> bool {
    matches!(
        e,
        DataError::Core(ibbe_sgx_core::CoreError::CorruptMetadata(_))
    )
}

/// Bounded retry-with-backoff for transient store faults (outages,
/// timeouts — [`DataError::is_transient`]): the generalization of the
/// session's original one-shot torn-read guard. Non-transient failures —
/// CAS conflicts, revocation, tampering — are never retried; they need
/// state repair or must fail closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` is treated as `1`).
    pub attempts: u32,
    /// Sleep before the first retry, doubling on each further one.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts with 2/4/8 ms backoffs: rides out request-level
    /// faults, gives up inside a real outage window (whose clearing is
    /// the *caller's* schedule — a re-queued lease, the next sweep round).
    fn default() -> Self {
        Self {
            attempts: 4,
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> Self {
        Self {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Runs `op`, retrying transient failures within the budget.
    ///
    /// # Errors
    /// The first non-transient error, or the last transient one once the
    /// attempt budget is spent.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, DataError>) -> Result<T, DataError> {
        let attempts = self.attempts.max(1);
        let mut backoff = self.backoff;
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    telemetry::event("retry.attempt")
                        .with("attempt", attempt)
                        .with("error", e.to_string())
                        .emit();
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("the final attempt either returned or erred")
    }
}

/// A group member's data-plane session.
///
/// Wraps the control-plane [`Client`] (partition watch + `gk` derivation)
/// with an **epoch-indexed key ring**: the current `gk` plus every retired
/// epoch key unlocked from the published history. The ring is the cache the
/// long-poll notifications invalidate — any change to the group's metadata
/// folder (observed via a zero-timeout poll before each operation, or a
/// blocking [`ClientSession::watch`]) triggers a rebuild.
///
/// A session whose member was revoked keeps its last ring (that is the
/// attacker model of the lazy window: retired keys the victim already held)
/// but can never extend it — deriving the rotated `gk` fails, so every
/// object sealed at a newer epoch answers [`DataError::UnknownEpoch`].
pub struct ClientSession {
    /// The wrapped control-plane client also owns the store handle and the
    /// group name; this type deliberately keeps no copies of either.
    control: Client,
    /// The group's data folders (one per data shard); every object lives in
    /// exactly one, chosen by a stable hash of its name.
    folders: Vec<String>,
    ring: Option<KeyRing>,
    /// object name → store version last observed (the CAS expectation).
    versions: HashMap<String, u64>,
    /// The store's routing epoch last observed (see
    /// [`cloud_store::ObjectStore::routing_epoch`]); a bump means folders
    /// may have been live-migrated, re-stamping versions.
    routing_epoch_seen: u64,
    /// Objects whose tracked version predates a routing-epoch bump: their
    /// CAS expectation may name a pre-migration version, so the next write
    /// re-reads the current one instead of burning a guaranteed conflict.
    stale_routes: HashSet<String>,
    metrics: Arc<DataMetrics>,
    rng: StdRng,
    /// Transient-store-fault retry budget applied to every cloud round-trip.
    retry: RetryPolicy,
}

impl ClientSession {
    /// Creates a session for `identity` over `group`.
    pub fn new(
        identity: impl Into<String>,
        usk: UserSecretKey,
        pk: PublicKey,
        store: impl Into<StoreHandle>,
        group: impl Into<String>,
    ) -> Self {
        let seed = rand::thread_rng().next_u64();
        Self::with_seed(identity, usk, pk, store, group, seed)
    }

    /// Deterministic variant (tests and reproducible benchmarks): `seed`
    /// drives the DEK/nonce generator.
    pub fn with_seed(
        identity: impl Into<String>,
        usk: UserSecretKey,
        pk: PublicKey,
        store: impl Into<StoreHandle>,
        group: impl Into<String>,
        seed: u64,
    ) -> Self {
        let group = group.into();
        let control = Client::new(identity, usk, pk, store, group.clone());
        let routing_epoch_seen = control.store().routing_epoch();
        Self {
            folders: vec![data_folder(&group)],
            control,
            ring: None,
            versions: HashMap::new(),
            routing_epoch_seen,
            stale_routes: HashSet::new(),
            metrics: Arc::new(DataMetrics::default()),
            rng: StdRng::seed_from_u64(seed),
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the transient-fault [`RetryPolicy`] (default: 4 attempts
    /// with doubling backoff; [`RetryPolicy::none`] surfaces every fault).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The session's transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Spreads this session's data namespace over `shards` data folders
    /// (objects routed by stable name hash). Every session and sweeper of a
    /// group must agree on the shard count; configure it at construction,
    /// before any I/O.
    ///
    /// # Panics
    /// Panics if `shards` is zero or the session has already tracked
    /// object versions.
    #[must_use]
    pub fn with_data_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one data shard is required");
        assert!(
            self.versions.is_empty(),
            "configure data sharding before any object I/O"
        );
        self.folders = (0..shards)
            .map(|s| data_shard_folder(self.control.group(), s, shards))
            .collect();
        self
    }

    /// Number of data folders this session spreads objects over.
    pub fn data_shards(&self) -> usize {
        self.folders.len()
    }

    /// The identity this session acts as.
    pub fn identity(&self) -> &str {
        self.control.identity()
    }

    /// The group this session reads and writes.
    pub fn group(&self) -> &str {
        self.control.group()
    }

    /// Snapshot of this session's counters.
    pub fn metrics(&self) -> DataMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The current key epoch per this session's ring, if one was derived.
    pub fn current_epoch(&self) -> Option<u64> {
        self.ring.as_ref().map(KeyRing::current_epoch)
    }

    /// Number of epochs the session can currently unwrap.
    pub fn ring_len(&self) -> usize {
        self.ring.as_ref().map(KeyRing::len).unwrap_or(0)
    }

    /// Forces a full control-plane sync and ring rebuild. Returns the
    /// current epoch.
    ///
    /// # Errors
    /// Control-plane failures (e.g. [`acs::AcsError::NotAMember`] after
    /// revocation) or a history that fails to authenticate. The previous
    /// ring, if any, is left in place on failure.
    pub fn refresh(&mut self) -> Result<u64, DataError> {
        let _rid = telemetry::request_scope();
        let span = telemetry::span("session.refresh")
            .with("group", self.group())
            .enter();
        let retry = self.retry;
        let gk = retry.run(|| self.control.sync().map_err(DataError::from))?;
        let result = match self.rebuild_ring(gk) {
            Err(e) if torn_read(&e) => {
                // the partition was fetched just before a rotation's atomic
                // publish and the history just after (or vice versa) — one
                // re-sync observes a consistent pair; a genuinely tampered
                // history fails again here and propagates
                let gk = retry.run(|| self.control.sync().map_err(DataError::from))?;
                self.rebuild_ring(gk)
            }
            other => other,
        };
        if let Ok(epoch) = &result {
            span.record("epoch", *epoch);
        }
        result
    }

    /// Rebuilds the ring from a freshly derived `gk` plus the published
    /// epoch history.
    fn rebuild_ring(&mut self, gk: ibbe_sgx_core::GroupKey) -> Result<u64, DataError> {
        let epoch = self
            .control
            .current_epoch()
            .expect("sync populates the partition cache");
        let retry = self.retry;
        let fetched = retry.run(|| {
            Ok(self
                .control
                .store()
                .try_get(self.control.group(), EPOCHS_ITEM)?)
        })?;
        let history = match fetched {
            Some((bytes, _)) => Some(
                KeyHistory::from_bytes(&bytes)
                    .ok_or(DataError::WireFormat("epoch history object"))?,
            ),
            None => None,
        };
        let ring = KeyRing::assemble(gk, epoch, history.as_ref(), self.control.group())?;
        self.ring = Some(ring);
        self.metrics.record_key_refresh();
        Ok(epoch)
    }

    /// True if the control plane's observed epoch differs from the ring's —
    /// the only condition under which a rebuild can change anything (`gk`
    /// and the history rotate if and only if the epoch advances; structural
    /// changes like adds or re-partitions preserve all three).
    fn ring_is_stale(&self) -> bool {
        match (&self.ring, self.control.current_epoch()) {
            (Some(ring), Some(epoch)) => ring.current_epoch() != epoch,
            _ => true,
        }
    }

    /// Non-blocking invalidation check before an operation: a zero-timeout
    /// long poll on the group's **metadata** folder. The ring is rebuilt
    /// only when the observed epoch moved; a failing control sync (revoked
    /// identity) keeps the stale ring — by design, see the type-level docs.
    /// Also the sweeper's cheap between-pass freshness check.
    pub(crate) fn maybe_refresh(&mut self) -> Result<(), DataError> {
        self.observe_routing();
        if self.ring.is_none() {
            self.refresh()?;
            return Ok(());
        }
        let retry = self.retry;
        match retry.run(|| {
            self.control
                .wait_for_update(Duration::ZERO)
                .map_err(DataError::from)
        }) {
            Ok(Some(gk)) if self.ring_is_stale() => match self.rebuild_ring(gk) {
                Err(e) if torn_read(&e) => self.refresh().map(|_| ()),
                other => other.map(|_| ()),
            },
            Ok(_) => Ok(()),
            // a revoked identity keeps its stale ring by design; every
            // other control-plane failure (wire corruption, tampering)
            // must fail closed, not silently continue on old keys
            Err(DataError::Acs(acs::AcsError::NotAMember(_))) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Notices store routing-epoch bumps (an online shard resize): every
    /// tracked CAS expectation minted before the bump is marked
    /// route-stale, to be re-read lazily before its next conditional
    /// write — migration re-stamps item versions, so the old expectation
    /// would lose its CAS unconditionally. Reads are unaffected (routing
    /// is the store's job); this only heals the session's version cache.
    pub(crate) fn observe_routing(&mut self) {
        let epoch = self.control.store().routing_epoch();
        if epoch != self.routing_epoch_seen {
            self.routing_epoch_seen = epoch;
            if !self.versions.is_empty() {
                telemetry::event("session.reroute")
                    .with("routing_epoch", epoch)
                    .with("tracked", self.versions.len())
                    .emit();
                self.stale_routes.extend(self.versions.keys().cloned());
            }
        }
    }

    /// Re-reads `object`'s current store version after a routing-epoch
    /// bump, replacing (or dropping) the tracked CAS expectation.
    ///
    /// # Errors
    /// Transport failures from the version read.
    fn refresh_route(&mut self, object: &str) -> Result<(), DataError> {
        let folder = self.folder_of(object).to_string();
        let retry = self.retry;
        let fetched = retry.run(|| Ok(self.control.store().try_get(&folder, object)?))?;
        match fetched {
            Some((_, version)) => {
                self.versions.insert(object.to_string(), version);
            }
            None => {
                self.versions.remove(object);
            }
        }
        Ok(())
    }

    /// Blocks on the group's metadata long poll until it changes (or
    /// `timeout`), rebuilding the ring if the change moved the epoch.
    /// Returns `true` if the ring was rebuilt — the push-style cache
    /// invalidation path.
    ///
    /// # Errors
    /// Same contract as [`ClientSession::refresh`].
    pub fn watch(&mut self, timeout: Duration) -> Result<bool, DataError> {
        if self.ring.is_none() {
            self.refresh()?;
        }
        let retry = self.retry;
        match retry.run(|| {
            self.control
                .wait_for_update(timeout)
                .map_err(DataError::from)
        })? {
            Some(gk) if self.ring_is_stale() => {
                if let Err(e) = self.rebuild_ring(gk) {
                    if !torn_read(&e) {
                        return Err(e);
                    }
                    self.refresh()?;
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Lists the group's object names across all data folders (sorted, so
    /// the result is independent of the shard layout).
    pub fn list_objects(&self) -> Vec<String> {
        let mut objects: Vec<String> = self
            .folders
            .iter()
            .flat_map(|f| self.control.store().list(f))
            .collect();
        objects.sort();
        objects
    }

    /// Fetches and parses one object without decrypting it, recording its
    /// store version as the session's CAS expectation.
    ///
    /// # Errors
    /// [`DataError::NotFound`] / [`DataError::WireFormat`].
    pub fn fetch(&mut self, object: &str) -> Result<(SealedObject, u64), DataError> {
        let _rid = telemetry::request_scope();
        let _span = telemetry::span("session.fetch")
            .with("object", object)
            .enter();
        let folder = self.folder_of(object).to_string();
        let retry = self.retry;
        let fetched = retry.run(|| Ok(self.control.store().try_get(&folder, object)?))?;
        let Some((bytes, version)) = fetched else {
            // deleted under us: the stale CAS expectation goes with it
            self.versions.remove(object);
            self.stale_routes.remove(object);
            return Err(DataError::NotFound(object.to_string()));
        };
        let sealed = SealedObject::from_bytes(&bytes)?;
        self.versions.insert(object.to_string(), version);
        // a freshly observed version is current-route by definition
        self.stale_routes.remove(object);
        Ok((sealed, version))
    }

    /// Deletes `object` from the store, dropping its tracked CAS version.
    /// Returns whether the store held it.
    pub fn delete(&mut self, object: &str) -> bool {
        let folder = self.folder_of(object).to_string();
        self.versions.remove(object);
        self.stale_routes.remove(object);
        self.control.store().delete(&folder, object)
    }

    /// Garbage-collects the CAS `versions` map: drops entries for objects
    /// no longer present in the store, so long-lived sessions replaying
    /// churny traces (objects written, deleted elsewhere, never touched
    /// again) do not leak memory. Returns the number of entries dropped.
    pub fn gc_versions(&mut self) -> usize {
        let live: HashSet<String> = self.list_objects().into_iter().collect();
        self.prune_versions(&live, |_| true)
    }

    /// GC restricted to objects for which `in_scope` holds, against a
    /// caller-supplied live set (the sweeper's scan already holds one, so
    /// it prunes for free, without re-listing).
    pub(crate) fn prune_versions(
        &mut self,
        live: &HashSet<String>,
        in_scope: impl Fn(&str) -> bool,
    ) -> usize {
        let before = self.versions.len();
        self.versions
            .retain(|name, _| live.contains(name) || !in_scope(name));
        let Self {
            versions,
            stale_routes,
            ..
        } = self;
        stale_routes.retain(|name| versions.contains_key(name));
        before - versions.len()
    }

    /// Number of objects the session currently tracks a CAS version for.
    pub fn tracked_versions(&self) -> usize {
        self.versions.len()
    }

    /// Writes `plaintext` as `object`, envelope-encrypted at the current
    /// epoch, conditioned on the version this session last observed (`0` =
    /// create). A write after a revocation therefore re-wraps the object to
    /// the new epoch as a side effect — the lazy path's "migrate on next
    /// write".
    ///
    /// # Errors
    /// [`DataError::Conflict`] if a concurrent writer moved the object:
    /// call [`ClientSession::fetch`] (or [`ClientSession::read`]) to adopt
    /// the new version, merge, and retry.
    pub fn write(&mut self, object: &str, plaintext: &[u8]) -> Result<u64, DataError> {
        let _rid = telemetry::request_scope();
        let span = telemetry::span("session.write")
            .with("object", object)
            .enter();
        self.maybe_refresh()?;
        if self.stale_routes.remove(object) {
            // a shard resize re-stamped versions; re-read rather than
            // burn a guaranteed CAS conflict on the stale expectation
            self.refresh_route(object)?;
        }
        let ring = self.ring.as_ref().ok_or(DataError::NoKeys)?;
        let sealed = SealedObject::seal(ring, object, plaintext, &mut self.rng);
        let expected = self.versions.get(object).copied().unwrap_or(0);
        let folder = self.folder_of(object).to_string();
        let bytes = sealed.to_bytes();
        let retry = self.retry;
        match retry.run(|| {
            self.control
                .store()
                .try_put_if_version(&folder, object, bytes.clone(), expected)
                .map_err(DataError::from)
        }) {
            Ok(version) => {
                self.versions.insert(object.to_string(), version);
                self.metrics.record_write();
                span.record("conflict", false);
                Ok(version)
            }
            Err(DataError::Conflict(conflict)) => {
                self.metrics.record_write_conflict();
                span.record("conflict", true);
                Err(DataError::Conflict(conflict))
            }
            Err(e) => Err(e),
        }
    }

    /// Reads and decrypts `object`. If the object names an epoch newer than
    /// the ring (a rotation this session has not observed), the ring is
    /// refreshed once before giving up.
    ///
    /// # Errors
    /// [`DataError::NotFound`], [`DataError::UnknownEpoch`] (revoked or
    /// insufficient history), [`DataError::AuthFailed`] on tampering.
    pub fn read(&mut self, object: &str) -> Result<Vec<u8>, DataError> {
        self.maybe_refresh()?;
        let (sealed, _) = self.fetch(object)?;
        self.open_sealed(object, &sealed)
    }

    /// Decrypts a fetched object with the read path's refresh-once
    /// semantics: an epoch newer than the ring triggers one refresh
    /// attempt (a revoked identity keeps its stale ring and fails the
    /// epoch lookup). Shared by [`ClientSession::read`] and the pipelined
    /// session's completion path, so both decrypt identically.
    pub(crate) fn open_sealed(
        &mut self,
        object: &str,
        sealed: &SealedObject,
    ) -> Result<Vec<u8>, DataError> {
        if self.ring.is_none()
            || self
                .ring
                .as_ref()
                .is_some_and(|r| r.key_for(sealed.epoch).is_none())
        {
            // one refresh attempt; a revoked identity keeps its stale ring
            // and will fail the epoch lookup below
            let _ = self.refresh();
        }
        let ring = self.ring.as_ref().ok_or(DataError::NoKeys)?;
        let plaintext = sealed.open(ring, object)?;
        self.metrics
            .record_read(sealed.epoch < ring.current_epoch());
        Ok(plaintext)
    }

    /// Re-encrypts one fetched object to the current epoch and writes it
    /// back CAS-conditioned on `expected` — the sweeper's unit of work.
    pub(crate) fn migrate(
        &mut self,
        object: &str,
        sealed: &SealedObject,
        expected: u64,
    ) -> Result<(), DataError> {
        let _rid = telemetry::request_scope();
        let span = telemetry::span("session.migrate")
            .with("object", object)
            .with("from_epoch", sealed.epoch)
            .enter();
        let ring = self.ring.as_ref().ok_or(DataError::NoKeys)?;
        let fresh = sealed.reencrypt(ring, object, &mut self.rng)?;
        let folder = self.folder_of(object).to_string();
        let bytes = fresh.to_bytes();
        let retry = self.retry;
        match retry.run(|| {
            self.control
                .store()
                .try_put_if_version(&folder, object, bytes.clone(), expected)
                .map_err(DataError::from)
        }) {
            Ok(version) => {
                self.versions.insert(object.to_string(), version);
                self.metrics.record_migration();
                span.record("conflict", false);
                Ok(())
            }
            Err(DataError::Conflict(conflict)) => {
                self.metrics.record_migration_conflict();
                span.record("conflict", true);
                Err(DataError::Conflict(conflict))
            }
            Err(e) => Err(e),
        }
    }

    pub(crate) fn store(&self) -> &StoreHandle {
        self.control.store()
    }

    // --- pipelined-session plumbing (same crate only) ---------------------

    /// Seals `plaintext` for `object` under the current ring — the
    /// pipelined session's submission-time seal, so writes queued across
    /// a rotation are sealed under the ring in force when they actually
    /// go out.
    pub(crate) fn seal_object(
        &mut self,
        object: &str,
        plaintext: &[u8],
    ) -> Result<SealedObject, DataError> {
        let ring = self.ring.as_ref().ok_or(DataError::NoKeys)?;
        Ok(SealedObject::seal(ring, object, plaintext, &mut self.rng))
    }

    /// The CAS expectation for `object` (`0` = create), as
    /// [`ClientSession::write`] would stamp it.
    pub(crate) fn expected_version(&self, object: &str) -> u64 {
        self.versions.get(object).copied().unwrap_or(0)
    }

    /// Records a store version observed on a completion (the pipelined
    /// counterpart of the insert [`ClientSession::write`]/
    /// [`ClientSession::fetch`] perform inline).
    pub(crate) fn note_version(&mut self, object: &str, version: u64) {
        self.versions.insert(object.to_string(), version);
        self.stale_routes.remove(object);
    }

    /// Drops the CAS expectation for an object observed deleted.
    pub(crate) fn forget_version(&mut self, object: &str) {
        self.versions.remove(object);
        self.stale_routes.remove(object);
    }

    /// The shared counters, for recording completions processed outside
    /// this type.
    pub(crate) fn metrics_ref(&self) -> &DataMetrics {
        &self.metrics
    }

    /// The data folder holding `object` (stable name-hash routing).
    pub fn folder_of(&self, object: &str) -> &str {
        let idx = (stable_hash64(object) % self.folders.len() as u64) as usize;
        &self.folders[idx]
    }

    /// The data folders, in shard order.
    pub(crate) fn data_folders(&self) -> &[String] {
        &self.folders
    }
}

impl core::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ClientSession({} on {}, epoch {:?}, {} epochs held)",
            self.identity(),
            self.group(),
            self.current_epoch(),
            self.ring_len()
        )
    }
}
