//! The data-plane system under test for read/write trace replay: one
//! backend drives the full stack (admin, store, writer session, sweep
//! pool) through the generic `workloads` event driver. The backend is
//! built over any [`cloud_store::ObjectStore`], so the same trace replays
//! unchanged on a single `CloudStore` or a folder-sharded `ShardedStore`
//! with a matching [`SweepPool`].

use crate::coordinator::{ReencryptionPolicy, RevocationCoordinator};
use crate::error::DataError;
use crate::metrics::DataMetricsSnapshot;
use crate::pipeline::PipelinedSession;
use crate::pool::SweepPool;
use crate::session::ClientSession;
use crate::sweeper::{SweepConfig, SweepDriver, SweepReport};
use acs::Admin;
use cloud_store::{CloudStore, StoreHandle};
use ibbe_sgx_core::{GroupEngine, MembershipBatch, PartitionSize};
use workloads::rw::{RwOp, RwTrace};
use workloads::{EventBackend, TraceOp};

/// Reserved identity for the replay backend's writer/reader session.
pub const WRITER_IDENTITY: &str = "__writer";

/// Reserved identity for the sweep workers' privileged sessions.
pub const SWEEPER_IDENTITY: &str = "__sweeper";

/// CAS-conflict retries per replayed write before the event fails (each
/// retry re-fetches the winner first, so the bound is only ever hit under
/// a pathological conflict storm).
const CONFLICT_RETRIES: usize = 4;

/// In-flight window of the writer session when
/// [`RwSystemConfig::pipelined`] is set — deep enough to exercise
/// coalescing and cross-object reordering without hiding ordering bugs
/// behind a huge window.
pub const PIPELINE_WINDOW: usize = 8;

/// A replayed event that failed, with the event context attached. The
/// generic `workloads` driver applies events infallibly, so the backend
/// records the first of these and skips the rest of the trace
/// (fail-stop) instead of panicking the replay thread — see
/// [`RwSystemBackend::failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// The event kind that failed: `"write"`, `"read"` or `"churn"`.
    pub op: &'static str,
    /// The object name, or a churn-batch summary.
    pub target: String,
    /// The underlying data-plane failure.
    pub source: DataError,
}

impl ReplayError {
    fn new(op: &'static str, target: impl Into<String>, source: DataError) -> Self {
        Self {
            op,
            target: target.into(),
            source,
        }
    }
}

impl core::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "replayed {} of {}: {}",
            self.op, self.target, self.source
        )
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Deployment shape of a replayed data-plane system.
#[derive(Clone, Copy, Debug)]
pub struct RwSystemConfig {
    /// IBBE partition size.
    pub partition_size: usize,
    /// Re-encryption policy enacted on churn events.
    pub policy: ReencryptionPolicy,
    /// Sweep pacing shared by every pool worker.
    pub sweep: SweepConfig,
    /// Payload size of every written object.
    pub payload_len: usize,
    /// Seed for the engine and the sessions' DEK/nonce generators.
    pub seed: u64,
    /// Data folders the namespace is spread over (see
    /// [`crate::data_shard_folder`]).
    pub data_shards: usize,
    /// Sweep-pool workers (usually equal to `data_shards`).
    pub sweep_workers: usize,
    /// Compact the epoch-key history after converged sweeps.
    pub compact_history: bool,
    /// Drive reads and writes through a [`PipelinedSession`] (window
    /// [`PIPELINE_WINDOW`]) instead of the serial [`ClientSession`] —
    /// same trace, same observable plaintexts, pipelined request flow.
    pub pipelined: bool,
}

impl Default for RwSystemConfig {
    fn default() -> Self {
        Self {
            partition_size: 4,
            policy: ReencryptionPolicy::Lazy,
            sweep: SweepConfig::default(),
            payload_len: 64,
            seed: 0xda7a,
            data_shards: 1,
            sweep_workers: 1,
            compact_history: false,
            pipelined: false,
        }
    }
}

/// The replay writer: either session type behind one op surface, so the
/// event arms stay session-agnostic.
enum WriterSession {
    Serial(ClientSession),
    Pipelined(PipelinedSession),
}

impl WriterSession {
    fn metrics(&self) -> DataMetricsSnapshot {
        match self {
            WriterSession::Serial(session) => session.metrics(),
            WriterSession::Pipelined(pipeline) => pipeline.metrics(),
        }
    }

    /// The serial session under either variant (draining the pipeline
    /// first, so the borrow never races queued work).
    fn session_mut(&mut self) -> &mut ClientSession {
        match self {
            WriterSession::Serial(session) => session,
            WriterSession::Pipelined(pipeline) => pipeline.session_mut(),
        }
    }

    /// Completes every outstanding pipelined request (no-op for serial).
    fn drain(&mut self) -> Result<(), DataError> {
        match self {
            WriterSession::Serial(_) => Ok(()),
            WriterSession::Pipelined(pipeline) => pipeline.flush(),
        }
    }
}

/// A complete data-plane deployment replaying [`RwOp`] events: reads and
/// writes go through a member [`ClientSession`], churn bursts through the
/// admin under the configured [`ReencryptionPolicy`] (eager sweeps run
/// synchronously inside the churn event, like production would).
pub struct RwSystemBackend {
    admin: Admin,
    group: String,
    session: WriterSession,
    sweepers: SweepPool,
    config: RwSystemConfig,
    payload: Vec<u8>,
    seq: u64,
    read_digest: u64,
    failure: Option<ReplayError>,
}

impl RwSystemBackend {
    /// Boots a single-store, single-shard deployment — the classic shape
    /// (equivalent to [`RwSystemBackend::with_store`] over a fresh
    /// [`CloudStore`] and a one-worker pool).
    pub fn new(
        partition_size: usize,
        group: &str,
        trace: &RwTrace,
        policy: ReencryptionPolicy,
        sweep: SweepConfig,
        payload_len: usize,
        seed: u64,
    ) -> Self {
        Self::with_store(
            CloudStore::new(),
            group,
            trace,
            RwSystemConfig {
                partition_size,
                policy,
                sweep,
                payload_len,
                seed,
                ..RwSystemConfig::default()
            },
        )
    }

    /// Boots an engine/admin (deterministically from `config.seed`) over
    /// any store, creates the trace's group with the service identities
    /// appended, and opens the writer session plus a [`SweepPool`] of
    /// `config.sweep_workers` workers over `config.data_shards` data
    /// folders.
    pub fn with_store(
        store: impl Into<StoreHandle>,
        group: &str,
        trace: &RwTrace,
        config: RwSystemConfig,
    ) -> Self {
        let store = store.into();
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&config.seed.to_le_bytes());
        let engine = GroupEngine::bootstrap_seeded(
            PartitionSize::new(config.partition_size).expect("partition size"),
            seed_bytes,
        )
        .expect("bootstrap");
        let admin = Admin::new(engine, store.clone());
        let mut members = trace.initial_members.clone();
        members.push(WRITER_IDENTITY.to_string());
        members.push(SWEEPER_IDENTITY.to_string());
        admin.create_group(group, members).expect("create group");

        let pk = admin.engine().public_key().clone();
        let session = |identity: &str, seed: u64| {
            ClientSession::with_seed(
                identity,
                admin
                    .engine()
                    .extract_user_key(identity)
                    .expect("service usk"),
                pk.clone(),
                store.clone(),
                group,
                seed,
            )
            .with_data_shards(config.data_shards)
        };
        let writer = session(WRITER_IDENTITY, config.seed ^ 0x5e55);
        let writer = if config.pipelined {
            WriterSession::Pipelined(PipelinedSession::new(writer, PIPELINE_WINDOW))
        } else {
            WriterSession::Serial(writer)
        };
        let sweepers = SweepPool::new(
            (0..config.sweep_workers.max(1))
                .map(|w| session(SWEEPER_IDENTITY, config.seed ^ 0x5eed ^ (w as u64) << 32))
                .collect(),
            config.sweep,
        );
        Self {
            admin,
            group: group.to_string(),
            session: writer,
            sweepers,
            config,
            payload: vec![0xd5; config.payload_len],
            seq: 0,
            read_digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            failure: None,
        }
    }

    /// The underlying admin (store metrics, metadata).
    pub fn admin(&self) -> &Admin {
        &self.admin
    }

    /// The deployment shape.
    pub fn config(&self) -> RwSystemConfig {
        self.config
    }

    /// The writer session (post-replay reads and diagnostics). Under a
    /// pipelined deployment this drains the window first, so the serial
    /// view is always consistent.
    pub fn session_mut(&mut self) -> &mut ClientSession {
        self.session.session_mut()
    }

    /// The writer session's counters.
    pub fn session_metrics(&self) -> DataMetricsSnapshot {
        self.session.metrics()
    }

    /// FNV-1a fold of `(object name, plaintext)` over every successful
    /// replayed read, in event order. Two deployments that replayed the
    /// same trace and observed the same bytes at every read have equal
    /// digests — the observational-equivalence check the pipelined
    /// property tests assert.
    pub fn read_digest(&self) -> u64 {
        self.read_digest
    }

    fn fold_read(&mut self, object: &str, plaintext: &[u8]) {
        let mut h = self.read_digest;
        for byte in object.as_bytes().iter().chain([0xffu8].iter()) {
            h = (h ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for byte in plaintext {
            h = (h ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.read_digest = h;
    }

    /// The sweep pool (drive it between events under the lazy policy).
    pub fn sweeper_mut(&mut self) -> &mut SweepPool {
        &mut self.sweepers
    }

    /// The pool's merged counters.
    pub fn sweeper_metrics(&self) -> DataMetricsSnapshot {
        self.sweepers.metrics()
    }

    /// Converges the lazy tail now: drives the pool to convergence, then
    /// (when configured) compacts the epoch history and GCs the writer's
    /// versions map.
    ///
    /// # Errors
    /// Sweep or compaction failures.
    pub fn converge(&mut self) -> Result<SweepReport, DataError> {
        self.session.drain()?;
        let report = self.sweepers.run_until_converged()?;
        coordinator(&self.admin, self.config).compact_after(&self.group, &report)?;
        self.session.session_mut().gc_versions();
        Ok(report)
    }

    fn churn(&mut self, ops: &[TraceOp]) -> Result<(), DataError> {
        // Complete the window before the membership change: queued writes
        // sealed under the outgoing epoch must land (and be swept) rather
        // than straddle the rotation.
        self.session.drain()?;
        let mut batch = MembershipBatch::new();
        for op in ops {
            match op {
                TraceOp::Add { user } => batch.add(user.clone()),
                TraceOp::Remove { user } => batch.remove(user.clone()),
            };
        }
        coordinator(&self.admin, self.config).revoke(&self.group, &batch, &mut self.sweepers)?;
        Ok(())
    }

    /// The first event failure of the replay, if any. The infallible
    /// [`EventBackend::apply`] records it and skips every later event, so
    /// a finished replay with `failure() == None` really did apply the
    /// whole trace.
    pub fn failure(&self) -> Option<&ReplayError> {
        self.failure.as_ref()
    }

    /// Takes the recorded failure, re-arming the backend for more events.
    pub fn take_failure(&mut self) -> Option<ReplayError> {
        self.failure.take()
    }

    /// Applies one event, surfacing failures as typed [`ReplayError`]s
    /// instead of panicking. A lost CAS race on a write adopts the
    /// winning version and retries (bounded).
    ///
    /// # Errors
    /// The failed session or churn call, wrapped with the event context.
    pub fn try_apply(&mut self, event: &RwOp) -> Result<(), ReplayError> {
        match event {
            RwOp::Write { object } => {
                self.seq = self.seq.wrapping_add(1);
                let n = self.payload.len().min(8);
                // low-order counter bytes, so short payloads still vary
                self.payload[..n].copy_from_slice(&self.seq.to_le_bytes()[..n]);
                let payload = self.payload.clone();
                match &mut self.session {
                    WriterSession::Serial(session) => {
                        let mut conflicts = 0;
                        loop {
                            match session.write(object, &payload) {
                                Ok(_) => return Ok(()),
                                Err(DataError::Conflict(_)) if conflicts < CONFLICT_RETRIES => {
                                    conflicts += 1;
                                    // adopt the winning version, then retry
                                    session.fetch(object).map_err(|e| {
                                        ReplayError::new("conflicted re-fetch", object.clone(), e)
                                    })?;
                                }
                                Err(e) => return Err(ReplayError::new("write", object.clone(), e)),
                            }
                        }
                    }
                    // the pipeline retries lost CAS races internally
                    WriterSession::Pipelined(pipeline) => pipeline
                        .write(object, &payload)
                        .map_err(|e| ReplayError::new("write", object.clone(), e)),
                }
            }
            RwOp::Read { object } => {
                let plaintext = match &mut self.session {
                    WriterSession::Serial(session) => session.read(object),
                    WriterSession::Pipelined(pipeline) => pipeline.read(object),
                }
                .map_err(|e| ReplayError::new("read", object.clone(), e))?;
                self.fold_read(object, &plaintext);
                Ok(())
            }
            RwOp::Churn { ops } => self
                .churn(ops)
                .map_err(|e| ReplayError::new("churn", format!("batch of {}", ops.len()), e)),
        }
    }
}

/// Borrows only the admin, so the caller can hold the sweep pool mutably
/// at the same time.
fn coordinator(admin: &Admin, config: RwSystemConfig) -> RevocationCoordinator<'_> {
    let coordinator = RevocationCoordinator::new(admin, config.policy);
    if config.compact_history {
        coordinator.with_history_compaction()
    } else {
        coordinator
    }
}

impl EventBackend<RwOp> for RwSystemBackend {
    /// Fail-stop, never panicking: the first [`ReplayError`] is recorded
    /// (see [`RwSystemBackend::failure`]) and every later event is
    /// skipped, so post-replay assertions can distinguish "trace
    /// diverged" from "backend crashed mid-trace".
    fn apply(&mut self, event: &RwOp) {
        if self.failure.is_some() {
            return;
        }
        if let Err(e) = self.try_apply(event) {
            self.failure = Some(e);
        }
    }
}

impl core::fmt::Debug for RwSystemBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "RwSystemBackend({}, {:?}, {}B payload, {} data shards, {} sweep workers)",
            self.group,
            self.config.policy,
            self.payload.len(),
            self.config.data_shards,
            self.config.sweep_workers
        )
    }
}
