//! The data-plane system under test for read/write trace replay: one
//! backend drives the full stack (admin, store, writer session, sweeper)
//! through the generic `workloads` event driver.

use crate::coordinator::{ReencryptionPolicy, RevocationCoordinator};
use crate::error::DataError;
use crate::metrics::DataMetricsSnapshot;
use crate::session::ClientSession;
use crate::sweeper::{SweepConfig, Sweeper};
use acs::Admin;
use cloud_store::CloudStore;
use ibbe_sgx_core::{GroupEngine, MembershipBatch, PartitionSize};
use workloads::rw::{RwOp, RwTrace};
use workloads::{EventBackend, TraceOp};

/// Reserved identity for the replay backend's writer/reader session.
pub const WRITER_IDENTITY: &str = "__writer";

/// Reserved identity for the sweeper's privileged session.
pub const SWEEPER_IDENTITY: &str = "__sweeper";

/// A complete data-plane deployment replaying [`RwOp`] events: reads and
/// writes go through a member [`ClientSession`], churn bursts through the
/// admin under the configured [`ReencryptionPolicy`] (eager sweeps run
/// synchronously inside the churn event, like production would).
pub struct RwSystemBackend {
    admin: Admin,
    group: String,
    session: ClientSession,
    sweeper: Sweeper,
    policy: ReencryptionPolicy,
    payload: Vec<u8>,
    seq: u64,
}

impl RwSystemBackend {
    /// Boots an engine/admin (deterministically from `seed`), creates the
    /// trace's group with the service identities appended, and opens the
    /// writer and sweeper sessions.
    pub fn new(
        partition_size: usize,
        group: &str,
        trace: &RwTrace,
        policy: ReencryptionPolicy,
        sweep: SweepConfig,
        payload_len: usize,
        seed: u64,
    ) -> Self {
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&seed.to_le_bytes());
        let engine = GroupEngine::bootstrap_seeded(
            PartitionSize::new(partition_size).expect("partition size"),
            seed_bytes,
        )
        .expect("bootstrap");
        let store = CloudStore::new();
        let admin = Admin::new(engine, store.clone());
        let mut members = trace.initial_members.clone();
        members.push(WRITER_IDENTITY.to_string());
        members.push(SWEEPER_IDENTITY.to_string());
        admin.create_group(group, members).expect("create group");

        let pk = admin.engine().public_key().clone();
        let session = ClientSession::with_seed(
            WRITER_IDENTITY,
            admin
                .engine()
                .extract_user_key(WRITER_IDENTITY)
                .expect("writer usk"),
            pk.clone(),
            store.clone(),
            group,
            seed ^ 0x5e55,
        );
        let sweeper = Sweeper::new(
            ClientSession::with_seed(
                SWEEPER_IDENTITY,
                admin
                    .engine()
                    .extract_user_key(SWEEPER_IDENTITY)
                    .expect("sweeper usk"),
                pk,
                store,
                group,
                seed ^ 0x5eed,
            ),
            sweep,
        );
        Self {
            admin,
            group: group.to_string(),
            session,
            sweeper,
            policy,
            payload: vec![0xd5; payload_len],
            seq: 0,
        }
    }

    /// The underlying admin (store metrics, metadata).
    pub fn admin(&self) -> &Admin {
        &self.admin
    }

    /// The writer session's counters.
    pub fn session_metrics(&self) -> DataMetricsSnapshot {
        self.session.metrics()
    }

    /// The sweeper (drive it between events under the lazy policy).
    pub fn sweeper_mut(&mut self) -> &mut Sweeper {
        &mut self.sweeper
    }

    /// The sweeper's counters.
    pub fn sweeper_metrics(&self) -> DataMetricsSnapshot {
        self.sweeper.metrics()
    }

    fn churn(&mut self, ops: &[TraceOp]) -> Result<(), DataError> {
        let mut batch = MembershipBatch::new();
        for op in ops {
            match op {
                TraceOp::Add { user } => batch.add(user.clone()),
                TraceOp::Remove { user } => batch.remove(user.clone()),
            };
        }
        let coordinator = RevocationCoordinator::new(&self.admin, self.policy);
        coordinator.revoke(&self.group, &batch, &mut self.sweeper)?;
        Ok(())
    }
}

impl EventBackend<RwOp> for RwSystemBackend {
    fn apply(&mut self, event: &RwOp) {
        match event {
            RwOp::Write { object } => {
                self.seq = self.seq.wrapping_add(1);
                let n = self.payload.len().min(8);
                // low-order counter bytes, so short payloads still vary
                self.payload[..n].copy_from_slice(&self.seq.to_le_bytes()[..n]);
                let payload = self.payload.clone();
                match self.session.write(object, &payload) {
                    Ok(_) => {}
                    Err(DataError::Conflict(_)) => {
                        // adopt the winning version and retry once
                        self.session
                            .fetch(object)
                            .expect("conflicted object exists");
                        self.session.write(object, &payload).expect("retried write");
                    }
                    Err(e) => panic!("write of {object}: {e}"),
                }
            }
            RwOp::Read { object } => {
                self.session.read(object).expect("read of written object");
            }
            RwOp::Churn { ops } => self.churn(ops).expect("churn batch"),
        }
    }
}

impl core::fmt::Debug for RwSystemBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "RwSystemBackend({}, {:?}, {}B payload)",
            self.group,
            self.policy,
            self.payload.len()
        )
    }
}
