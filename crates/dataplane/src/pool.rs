//! [`SweepPool`]: one sweep worker per data shard, driven concurrently.
//!
//! A single [`Sweeper`] converges a stale namespace serially — n objects
//! cost n GET + n CAS-PUT round-trips back to back. When the namespace is
//! spread over sharded data folders ([`crate::data_shard_folder`]) on a
//! [`cloud_store::ShardedStore`], those round-trips hit independent shards
//! (own version clock, wait queue and latency model each), so nothing
//! about the store serializes them. The pool exploits that: worker `w` of
//! `n` owns the folders with `idx % n == w`, every worker runs in its own
//! scoped thread, and the per-worker [`SweepReport`]s merge into one
//! (counter sums, convergence AND, epoch-floor min; elapsed is the true
//! wall clock of the parallel run). Lazy-window convergence time therefore
//! drops roughly by the shard factor.
//!
//! Workers never contend: the folder assignment is a partition, so no two
//! workers ever CAS the same object, and each worker's session holds its
//! own key ring and CAS-version map.

use crate::error::{panic_note, DataError};
use crate::metrics::DataMetricsSnapshot;
use crate::session::ClientSession;
use crate::sweeper::{SweepConfig, SweepDriver, SweepReport, Sweeper};
use std::time::{Duration, Instant};

/// A pool of shard-assigned [`Sweeper`] workers sharing one namespace; see
/// the module docs.
///
/// The pool contains worker failure instead of propagating it: a worker
/// that panics or hits a transient store fault costs its round — the
/// merged report comes back `converged: false` with a note in
/// [`SweepPool::last_failures`] — but never aborts the process or the
/// run. The failed worker's shard assignment is unchanged, so the next
/// round rescans and finishes its still-stale objects.
pub struct SweepPool {
    workers: Vec<Sweeper>,
    /// Per-worker failure notes from the most recent round.
    failures: Vec<String>,
}

impl SweepPool {
    /// Builds one worker per session, all pacing with `config`; worker `i`
    /// of `n` owns data-folder indices `idx % n == i`. Every session must
    /// belong to the same group and agree on the data-shard count
    /// (typically they are clones-by-construction of the same sweeper
    /// identity).
    ///
    /// # Panics
    /// Panics if `sessions` is empty or the sessions disagree on group or
    /// data-shard count.
    pub fn new(sessions: Vec<ClientSession>, config: SweepConfig) -> Self {
        assert!(
            !sessions.is_empty(),
            "at least one sweep worker is required"
        );
        let group = sessions[0].group().to_string();
        let shards = sessions[0].data_shards();
        for s in &sessions {
            assert_eq!(s.group(), group, "pool sessions must share a group");
            assert_eq!(
                s.data_shards(),
                shards,
                "pool sessions must agree on the data-shard count"
            );
        }
        let of = sessions.len();
        let workers = sessions
            .into_iter()
            .enumerate()
            .map(|(i, session)| Sweeper::with_assignment(session, config, i, of))
            .collect();
        Self {
            workers,
            failures: Vec::new(),
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The workers, in assignment order (diagnostics).
    pub fn workers(&self) -> &[Sweeper] {
        &self.workers
    }

    /// Arms every worker now: forces the control-plane sync and ring
    /// rebuild (concurrently) so a subsequent sweep starts migrating
    /// immediately. Call after a rotation to take the key-derivation cost
    /// out of the convergence window.
    ///
    /// # Errors
    /// The first worker's refresh failure (by index); a panicking worker
    /// surfaces as [`DataError::WorkerPanic`] instead of aborting.
    pub fn refresh(&mut self) -> Result<(), DataError> {
        let results: Vec<std::thread::Result<Result<(), DataError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .map(|worker| scope.spawn(move || worker.refresh()))
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        for result in results {
            match result {
                Ok(r) => r?,
                Err(payload) => return Err(DataError::WorkerPanic(panic_note(&*payload))),
            }
        }
        Ok(())
    }

    /// Failure notes (`worker index: cause`) from the most recent
    /// [`SweepDriver`] round; empty after a clean round.
    pub fn last_failures(&self) -> &[String] {
        &self.failures
    }

    /// Merged counters across every worker's session.
    pub fn metrics(&self) -> DataMetricsSnapshot {
        self.workers
            .iter()
            .map(Sweeper::metrics)
            .fold(DataMetricsSnapshot::default(), |acc, m| acc.merge(&m))
    }

    /// Runs `f` on every worker concurrently (scoped threads) and merges
    /// the reports. A worker that panics or fails transiently marks the
    /// round unconverged (with a note in [`SweepPool::last_failures`])
    /// instead of failing the round — its still-stale objects are found
    /// again by the next round's scan. The first *fatal* worker error (by
    /// index) still wins.
    fn drive(
        &mut self,
        f: impl Fn(&mut Sweeper) -> Result<SweepReport, DataError> + Sync,
    ) -> Result<SweepReport, DataError> {
        let t0 = Instant::now();
        let f = &f;
        let results: Vec<std::thread::Result<Result<SweepReport, DataError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .map(|worker| scope.spawn(move || f(worker)))
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        self.failures.clear();
        let mut merged = SweepReport {
            converged: true,
            ..SweepReport::default()
        };
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(Ok(report)) => merged.absorb(&report),
                Ok(Err(e)) if e.is_transient() => {
                    merged.converged = false;
                    self.failures.push(format!("worker {i}: {e}"));
                }
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    merged.converged = false;
                    self.failures
                        .push(format!("worker {i}: panicked: {}", panic_note(&*payload)));
                }
            }
        }
        merged.elapsed = t0.elapsed();
        Ok(merged)
    }
}

impl SweepDriver for SweepPool {
    fn sweep_now(&mut self) -> Result<SweepReport, DataError> {
        self.drive(Sweeper::sweep_now)
    }

    fn run_until_converged(&mut self) -> Result<SweepReport, DataError> {
        self.drive(Sweeper::run_until_converged)
    }

    /// Worker 0 blocks on the group's metadata long poll; on a wake, every
    /// worker converges its shard concurrently and the merged report is
    /// returned (elapsed covers the convergence, not the quiet poll wait).
    fn watch(&mut self, timeout: Duration) -> Result<Option<SweepReport>, DataError> {
        if !self.workers[0].poll(timeout)? {
            return Ok(None);
        }
        self.drive(Sweeper::run_until_converged).map(Some)
    }

    fn metrics(&self) -> DataMetricsSnapshot {
        SweepPool::metrics(self)
    }
}

impl core::fmt::Debug for SweepPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SweepPool({} workers)", self.workers.len())
    }
}
