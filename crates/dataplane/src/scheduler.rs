//! [`SweepScheduler`]: many groups' lazy-window convergence on one shared,
//! bounded worker fleet.
//!
//! A [`crate::SweepPool`] converges **one** group with one worker per data
//! shard. A provider hosting G groups cannot afford G dedicated pools —
//! that is G × shards threads for work that is bursty and mostly idle. The
//! scheduler inverts the shape: a fixed fleet of `W` workers
//! ([`FleetConfig::workers`]) serves every registered group's
//! [`SweepTask`], so "W workers, G groups" is an explicit configuration
//! instead of an emergent thread count.
//!
//! * **Work units.** Each task contributes one unit per data folder; a
//!   unit's lease runs one [`crate::SweepPass`] step — scan the folder once
//!   (first lease of a pass), then migrate up to [`FleetConfig::lease`]
//!   stale objects — exactly the primitive [`crate::Sweeper`] composes for
//!   the single-group path.
//! * **Staleness priority.** Arming a task stamps it with a monotone
//!   sequence number; ready units are leased oldest stamp first (the group
//!   furthest behind its lazy-window deadline runs first), FIFO within a
//!   stamp. A task keeps its stamp until its whole backlog converges, so a
//!   fresher rotation can never leapfrog an older one.
//! * **Re-arming.** [`SweepScheduler::watch`] blocks on the groups'
//!   metadata folders with at most `W` poll threads (cheap folder-version
//!   cursors, no object traffic), probes changed groups for an epoch move,
//!   and arms exactly those — idle groups cost nothing.
//! * **Elastic fleet.** With [`FleetConfig::min_workers`] and
//!   [`FleetConfig::max_workers`] set, a run starts at the floor and scales
//!   the active worker set with the ready-queue depth: a backlog deeper
//!   than the active set wakes a parked worker (`fleet.scale_up`), an idle
//!   active worker parks itself again (`fleet.scale_down`), and the
//!   high-water mark lands in [`FleetReport::peak_workers`].
//! * **Tenant QoS.** [`SweepTask::with_weight`] buys a group a larger
//!   share of the fleet: when any armed task is weighted, leases are
//!   granted weighted-fair (smallest per-group virtual time first, charged
//!   `consumed / weight` per lease) instead of strictly stalest-first.
//!   [`SweepTask::with_lease_rate_cap`] bounds a noisy group's grant rate
//!   outright; its deferred units never block other groups' grants.
//!
//! [`SweepScheduler::converge_all`] then drives the fleet to quiescence on
//! `W` scoped threads and reports per-group attribution: a labelled
//! [`GroupSweepReport`] per converged backlog (completion order, lease
//! counts, deadline overshoot) plus the grant-by-grant [`LeaseRecord`] log
//! the fairness tests assert against.

use crate::error::{panic_note, DataError};
use crate::metrics::{DataMetricsSnapshot, FleetMetrics};
use crate::session::ClientSession;
use crate::sweeper::{SweepConfig, SweepPass, SweepReport, Sweeper};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Shape of the shared sweep fleet.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Worker threads shared by every registered group (`W`). The
    /// scheduler never runs more than this many concurrent leases, no
    /// matter how many groups are registered.
    pub workers: usize,
    /// Objects migrated per lease: the increment in which a unit's pass is
    /// stepped before the worker goes back to the queue, bounding how long
    /// a large group can hold a worker away from a staler one.
    pub lease: usize,
    /// Per-group lazy-window target: a group converging later than
    /// `deadline` after its arming shows up as
    /// [`GroupSweepReport::overshoot`]. The deadline prioritizes work, it
    /// never abandons it.
    pub deadline: Duration,
    /// Safety cap on re-scans of one folder within a single backlog (a
    /// writer with a frozen pre-rotation ring can keep re-sealing objects
    /// at a retired epoch, forcing re-passes). When hit, the unit retires
    /// unconverged and the group's report says so.
    pub max_passes: usize,
    /// Safety cap on re-queues of one unit after leases lost to worker
    /// panics or transient store faults. When hit, the unit retires
    /// unconverged (with its failures in the lease log) instead of cycling
    /// through a store that never recovers.
    pub max_retries: usize,
    /// Autoscaling floor: the active worker set a fleet run starts with
    /// and never shrinks below. `0` inherits [`FleetConfig::workers`],
    /// which (with `max_workers` also `0`) disables autoscaling entirely —
    /// the fleet is a fixed `W` workers, exactly the pre-elastic shape.
    pub min_workers: usize,
    /// Autoscaling ceiling: the most workers a run may activate when the
    /// ready queue outruns the active set. `0` inherits
    /// [`FleetConfig::workers`]; a ceiling below the (effective) floor is
    /// raised to it.
    pub max_workers: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            lease: 8,
            deadline: Duration::from_secs(2),
            max_passes: 32,
            max_retries: 8,
            min_workers: 0,
            max_workers: 0,
        }
    }
}

impl FleetConfig {
    /// Effective `(floor, ceiling)` of the active worker set: zeros
    /// inherit `workers`, and the ceiling is never below the floor.
    fn worker_bounds(&self) -> (usize, usize) {
        let floor = if self.min_workers == 0 {
            self.workers
        } else {
            self.min_workers
        };
        let ceiling = if self.max_workers == 0 {
            self.workers
        } else {
            self.max_workers
        };
        (floor, ceiling.max(floor))
    }
}

/// One group's registration with the fleet: a per-data-folder set of
/// sweeper sessions, labelled by the group they serve.
pub struct SweepTask {
    units: Vec<Sweeper>,
    /// Weighted-fair share of the fleet (default 1).
    weight: u32,
    /// Minimum gap between two lease grants to this task, when rate-capped.
    lease_gap: Option<Duration>,
}

impl SweepTask {
    /// Builds a task from one privileged session per data folder (session
    /// `i` of `n` sweeps folder `i`), all pacing with `config`. The
    /// sessions must share a group and agree on the data-shard count —
    /// typically they are clones-by-construction of the same sweeper
    /// identity, exactly like a [`crate::SweepPool`]'s.
    ///
    /// # Panics
    /// Panics if `sessions` is empty, disagrees on group or shard count,
    /// or its length differs from the sessions' data-shard count.
    pub fn new(sessions: Vec<ClientSession>, config: SweepConfig) -> Self {
        assert!(
            !sessions.is_empty(),
            "at least one unit session is required"
        );
        let group = sessions[0].group().to_string();
        let shards = sessions[0].data_shards();
        assert_eq!(
            sessions.len(),
            shards,
            "one session per data folder is required"
        );
        for s in &sessions {
            assert_eq!(s.group(), group, "task sessions must share a group");
            assert_eq!(
                s.data_shards(),
                shards,
                "task sessions must agree on the data-shard count"
            );
        }
        let units = sessions
            .into_iter()
            .enumerate()
            .map(|(i, session)| Sweeper::with_assignment(session, config, i, shards))
            .collect();
        Self {
            units,
            weight: 1,
            lease_gap: None,
        }
    }

    /// Gives this task `weight` shares of the fleet. The default weight is
    /// 1; as long as *every* armed task keeps it, leases are granted in
    /// strict staleness order (the classic contract). The moment any armed
    /// task carries a different weight, the run grants weighted-fair
    /// instead: each group accrues virtual time at `consumed / weight` per
    /// lease and the smallest virtual time is served first, so a group
    /// with twice the weight converges through twice the backlog in the
    /// same contended window.
    ///
    /// # Panics
    /// Panics if `weight` is zero.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "a task weight must be positive");
        self.weight = weight;
        self
    }

    /// Caps this task's lease grant rate at `max_per_sec`. A capped
    /// group's ready units are *deferred*, not blocking: workers skip past
    /// them to other groups' units and come back when the gap since the
    /// group's last grant has passed. This is the blunt instrument for a
    /// tenant whose churn would otherwise monopolize the fleet even under
    /// weighted fairness.
    ///
    /// # Panics
    /// Panics if `max_per_sec` is zero.
    #[must_use]
    pub fn with_lease_rate_cap(mut self, max_per_sec: u32) -> Self {
        assert!(max_per_sec >= 1, "a lease rate cap must be positive");
        self.lease_gap = Some(Duration::from_secs(1) / max_per_sec);
        self
    }

    /// The group this task sweeps.
    pub fn group(&self) -> &str {
        self.units[0].session().group()
    }
}

/// Identifier of a registered task (dense, assigned by registration
/// order).
pub type TaskId = usize;

/// One lease grant, as the dispatcher saw it — the raw material of the
/// fairness assertions.
#[derive(Clone, Debug)]
pub struct LeaseRecord {
    /// Group the leased unit belongs to.
    pub group: String,
    /// The group's staleness stamp at grant time (lower = armed earlier =
    /// more behind).
    pub stamp: u64,
    /// The stamp of the unit at the head of the ready queue *after* this
    /// grant — `None` when the queue drained. In an unweighted run the
    /// queue orders by stamp, so priority says
    /// `stamp <= remaining_min_stamp` on every record: no lease ever went
    /// to a fresher group while a staler one had a unit ready. In a
    /// weighted run virtual time orders the queue and the stamp invariant
    /// deliberately does not hold.
    pub remaining_min_stamp: Option<u64>,
    /// Stale objects consumed from the unit's work-list by this lease
    /// (zero for a scan-only lease of a clean folder, or for a lease that
    /// aborted on an error).
    pub consumed: usize,
    /// Why this lease failed, when it did: the worker panicked or hit a
    /// transient store fault, and the unit was re-queued (or retired at
    /// the [`FleetConfig::max_retries`] cap) under the same stamp.
    pub failure: Option<String>,
}

/// One group's converged backlog, attributed by label — what
/// "who did what" looks like without parsing logs.
#[derive(Clone, Debug)]
pub struct GroupSweepReport {
    /// The group swept.
    pub group: String,
    /// Staleness stamp the backlog was served under.
    pub stamp: u64,
    /// Merged sweep counters over every unit and pass of this backlog
    /// (`converged` is the final per-unit state, not an AND over
    /// intermediate passes; `elapsed` is this group's convergence wall
    /// clock measured from the fleet run's start).
    pub report: SweepReport,
    /// Leases this backlog consumed.
    pub leases: u64,
    /// Leases lost to worker panics or transient store faults and
    /// re-queued (see [`LeaseRecord::failure`] for the cause of each).
    pub retries: u64,
    /// How far past `armed_at + deadline` the backlog converged
    /// (zero when the deadline was met).
    pub overshoot: Duration,
}

/// Outcome of one [`SweepScheduler::converge_all`] fleet run.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Per-group reports **in completion order**: `groups[0]` finished its
    /// backlog first. Staleness priority makes the most-behind group
    /// finish before the freshest one whenever the fleet is meaningfully
    /// oversubscribed.
    pub groups: Vec<GroupSweepReport>,
    /// Fleet-level aggregate: counters summed, `converged` AND-ed,
    /// `elapsed` the true wall clock of the run. `min_live_epoch` is
    /// `None` — epoch floors are per-group quantities (each group runs its
    /// own epoch counter); take them from [`FleetReport::groups`].
    pub total: SweepReport,
    /// Every lease grant, in grant order.
    pub leases: Vec<LeaseRecord>,
    /// Total leases lost to worker panics or transient store faults and
    /// re-queued, across every group.
    pub retries: u64,
    /// Worker threads the run had available (the autoscaling ceiling).
    pub workers: usize,
    /// High-water mark of the *active* worker set: how many workers the
    /// autoscaler actually engaged at once. Equals `workers` when
    /// autoscaling is disabled (no floor/ceiling configured).
    pub peak_workers: usize,
}

impl FleetReport {
    /// Completion order as group names.
    pub fn completion_order(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.group.as_str()).collect()
    }

    /// The report for `group`, if it completed a backlog in this run.
    pub fn group(&self, group: &str) -> Option<&GroupSweepReport> {
        self.groups.iter().find(|g| g.group == group)
    }

    /// The worst per-group deadline overshoot of the run.
    pub fn worst_overshoot(&self) -> Duration {
        self.groups
            .iter()
            .map(|g| g.overshoot)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Human-readable anomalies of the run, in a stable order: one warning
    /// per failed lease (worker panic or transient store fault, in grant
    /// order), then one per group that retired unconverged (in completion
    /// order). An empty iterator means a clean run.
    pub fn warnings(&self) -> impl Iterator<Item = String> + '_ {
        let lost_leases = self.leases.iter().filter_map(|l| {
            l.failure.as_ref().map(|cause| {
                format!(
                    "lease for group `{}` (stamp {}) lost: {cause}",
                    l.group, l.stamp
                )
            })
        });
        let stuck_groups = self.groups.iter().filter(|g| !g.report.converged).map(|g| {
            format!(
                "group `{}` retired unconverged after {} leases ({} retried)",
                g.group, g.leases, g.retries
            )
        });
        lost_leases.chain(stuck_groups)
    }
}

/// A registered task plus its scheduling state.
struct TaskEntry {
    group: String,
    /// `None` while a unit is checked out into a fleet run.
    units: Vec<Option<Sweeper>>,
    /// Arm stamp of the oldest unserved rotation; `None` when idle.
    stamp: Option<u64>,
    /// When that oldest rotation was observed (deadline accounting).
    armed_at: Option<Instant>,
    /// Metadata-folder version cursor for the cheap watch pass.
    cursor: u64,
    /// Weighted-fair share ([`SweepTask::with_weight`]).
    weight: u32,
    /// Minimum gap between lease grants ([`SweepTask::with_lease_rate_cap`]).
    lease_gap: Option<Duration>,
}

/// The multi-group sweep scheduler; see the module docs.
pub struct SweepScheduler {
    config: FleetConfig,
    tasks: Vec<TaskEntry>,
    /// Monotone arm-stamp source.
    clock: u64,
}

impl SweepScheduler {
    /// An empty scheduler with the given fleet shape.
    ///
    /// # Panics
    /// Panics if `config.workers` or `config.lease` is zero.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.workers >= 1, "at least one fleet worker is required");
        assert!(config.lease >= 1, "the lease increment must be positive");
        Self {
            config,
            tasks: Vec::new(),
            clock: 0,
        }
    }

    /// The fleet shape.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Registers a group's task and returns its id. The group's current
    /// metadata version becomes the watch baseline: rotations published
    /// *before* registration are not auto-detected — [`SweepScheduler::arm`]
    /// such a group explicitly.
    pub fn register(&mut self, task: SweepTask) -> TaskId {
        let group = task.group().to_string();
        // a store fault here must not block registration: baseline 0 at
        // worst makes the first watch pass probe the group spuriously
        let cursor = task.units[0]
            .session()
            .store()
            .try_folder_version(&group)
            .unwrap_or(0);
        self.tasks.push(TaskEntry {
            group,
            units: task.units.into_iter().map(Some).collect(),
            stamp: None,
            armed_at: None,
            cursor,
            weight: task.weight,
            lease_gap: task.lease_gap,
        });
        self.tasks.len() - 1
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Registered group names, in registration (task-id) order.
    pub fn groups(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.group.as_str()).collect()
    }

    /// Whether `task` currently has an unserved backlog.
    pub fn is_armed(&self, task: TaskId) -> bool {
        self.tasks[task].stamp.is_some()
    }

    /// Marks `task` stale now: its units join the next fleet run. A task
    /// armed while already pending keeps its original (older) stamp and
    /// deadline — staleness is measured from the oldest unserved rotation.
    pub fn arm(&mut self, task: TaskId) {
        let entry = &mut self.tasks[task];
        if entry.stamp.is_none() {
            entry.stamp = Some(self.clock);
            entry.armed_at = Some(Instant::now());
            telemetry::event("fleet.arm")
                .with("group", entry.group.as_str())
                .with("stamp", self.clock)
                .emit();
            self.clock += 1;
        }
    }

    /// Arms every registered task (a fleet-wide rotation wave).
    pub fn arm_all(&mut self) {
        for task in 0..self.tasks.len() {
            self.arm(task);
        }
    }

    /// Watches every registered group's metadata folder for up to
    /// `timeout` and arms the tasks whose key epoch moved, returning how
    /// many were (newly) armed. Detection is two-staged so idle groups
    /// cost nothing: a folder-version compare first (no object traffic at
    /// all), then a zero-timeout control-plane probe only for folders that
    /// actually changed (structural changes like pure adds update the
    /// cursor without arming). The blocking wait uses at most
    /// [`FleetConfig::workers`] poll threads regardless of the group
    /// count.
    ///
    /// # Errors
    /// Control-plane failures from a changed group's probe.
    pub fn watch(&mut self, timeout: Duration) -> Result<usize, DataError> {
        let deadline = Instant::now() + timeout;
        loop {
            let armed = self.check_and_arm()?;
            if armed > 0 {
                return Ok(armed);
            }
            let now = Instant::now();
            if now >= deadline || self.tasks.is_empty() {
                return Ok(0);
            }
            self.wait_any(deadline);
        }
    }

    /// One cheap detection pass: folder-version compares plus epoch probes
    /// for the folders that moved. Arms and counts the stale tasks.
    fn check_and_arm(&mut self) -> Result<usize, DataError> {
        let mut armed = 0;
        for task in 0..self.tasks.len() {
            let entry = &mut self.tasks[task];
            let was_idle = entry.stamp.is_none();
            let watcher = entry.units[0]
                .as_mut()
                .expect("units are parked between fleet runs");
            // a faulted version probe skips the group for this pass only:
            // the cursor is untouched, so the change stays detectable
            let Ok(version) = watcher.session().store().try_folder_version(&entry.group) else {
                continue;
            };
            if version == entry.cursor {
                continue;
            }
            // the probe also re-arms the watcher's key ring for free; a
            // rotation observed by an already-armed task merges into the
            // existing backlog under its (older) stamp. The cursor commits
            // only after the probe succeeds — a transient probe failure
            // must leave the change detectable by the retry.
            let epoch_moved = watcher.poll(Duration::ZERO)?;
            self.tasks[task].cursor = version;
            if epoch_moved && was_idle {
                self.arm(task);
                armed += 1;
            }
        }
        Ok(armed)
    }

    /// Blocks until any registered group's metadata folder moves past its
    /// cursor or `deadline` passes, using at most `workers` threads. Every
    /// thread polls its share of the folders in short slices — a change on
    /// a thread's own folder wakes it instantly, a change elsewhere is
    /// noticed at the next slice boundary (the scoped join waits for every
    /// thread, so nobody may sleep through a sibling's hit) — bounding
    /// detection latency by `slice × ceil(groups / workers)`.
    fn wait_any(&self, deadline: Instant) {
        const SLICE: Duration = Duration::from_millis(20);
        let watches: Vec<(cloud_store::StoreHandle, &str, u64)> = self
            .tasks
            .iter()
            .map(|t| {
                let unit = t.units[0].as_ref().expect("units are parked");
                (unit.session().store().clone(), t.group.as_str(), t.cursor)
            })
            .collect();
        let threads = self.config.workers.min(watches.len()).max(1);
        let hit = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let mine: Vec<&(cloud_store::StoreHandle, &str, u64)> =
                    watches.iter().skip(t).step_by(threads).collect();
                let hit = &hit;
                scope.spawn(move || {
                    while !hit.load(Ordering::Relaxed) {
                        for (store, folder, cursor) in &mine {
                            let budget = deadline.saturating_duration_since(Instant::now());
                            if budget.is_zero() {
                                return;
                            }
                            let poll = store.long_poll(folder, *cursor, SLICE.min(budget));
                            if !poll.timed_out {
                                hit.store(true, Ordering::Relaxed);
                                return;
                            }
                            if hit.load(Ordering::Relaxed) {
                                return;
                            }
                        }
                    }
                });
            }
        });
    }

    /// Fleet-wide counters plus the per-group breakdown (each group's
    /// entry sums its own unit sessions, so the attribution covers exactly
    /// the work this scheduler drove).
    pub fn metrics(&self) -> FleetMetrics {
        let by_group: Vec<(String, DataMetricsSnapshot)> = self
            .tasks
            .iter()
            .map(|t| {
                let merged = t
                    .units
                    .iter()
                    .map(|u| {
                        u.as_ref()
                            .expect("units are parked between fleet runs")
                            .metrics()
                    })
                    .fold(DataMetricsSnapshot::default(), |acc, m| acc.merge(&m));
                (t.group.clone(), merged)
            })
            .collect();
        let total = by_group
            .iter()
            .fold(DataMetricsSnapshot::default(), |acc, (_, m)| acc.merge(m));
        FleetMetrics { total, by_group }
    }

    /// Drives every armed task's backlog to convergence on `W` shared
    /// worker threads and returns the attributed fleet report. Armed tasks
    /// are disarmed on completion (even an unconverged completion — see
    /// [`FleetConfig::max_passes`] — so a stuck group surfaces in its
    /// report instead of wedging the fleet); idle tasks are untouched. An
    /// empty armed set returns an empty report immediately.
    ///
    /// # Errors
    /// The first *fatal* worker error aborts the run (remaining leases
    /// are dropped, sweepers are returned to their tasks, armings are
    /// kept so the run can be retried). Transient store faults and worker
    /// panics are not fatal: the lost lease's unit is re-queued under the
    /// same stamp — see [`FleetConfig::max_retries`] and
    /// [`LeaseRecord::failure`].
    pub fn converge_all(&mut self) -> Result<FleetReport, DataError> {
        let t0 = Instant::now();
        let lease = self.config.lease;
        let max_passes = self.config.max_passes.max(1);
        let max_retries = self.config.max_retries;
        let (floor, ceiling) = self.config.worker_bounds();

        // check armed tasks' units out into the dispatch state
        let mut parked: Vec<Option<ActiveUnit>> = Vec::new();
        let mut runs: Vec<TaskRun> = Vec::new();
        let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
        let mut seq = 0u64;
        for (task, entry) in self.tasks.iter_mut().enumerate() {
            let Some(stamp) = entry.stamp else { continue };
            let run = runs.len();
            for (folder, slot) in entry.units.iter_mut().enumerate() {
                let sweeper = slot.take().expect("unit already checked out");
                // every run's virtual time starts at zero, so the initial
                // key is 0 in both ordering modes
                ready.push(Ready {
                    key: 0,
                    stamp,
                    seq,
                    slot: parked.len(),
                });
                seq += 1;
                parked.push(Some(ActiveUnit {
                    task,
                    run,
                    folder,
                    sweeper,
                    pass: None,
                    passes: 0,
                    retries: 0,
                }));
            }
            runs.push(TaskRun {
                task,
                group: entry.group.clone(),
                stamp,
                armed_at: entry.armed_at.expect("armed tasks carry a timestamp"),
                outstanding: entry.units.len(),
                all_converged: true,
                report: SweepReport::default(),
                leases: 0,
                retries: 0,
                completed_at: None,
                weight: entry.weight.max(1),
                vtime: 0,
                lease_gap: entry.lease_gap,
                next_allowed: None,
            });
        }
        if runs.is_empty() {
            // an idle fleet is a quiescent one: same semantics as the
            // non-empty path, whose AND over zero groups is true
            return Ok(FleetReport {
                workers: ceiling,
                total: SweepReport {
                    converged: true,
                    ..SweepReport::default()
                },
                ..FleetReport::default()
            });
        }

        // strict staleness order is the contract as long as every armed
        // task keeps the default weight; any weighted task flips the whole
        // run to weighted-fair ordering
        let weighted = runs.iter().any(|r| r.weight != 1);
        let state = Mutex::new(Dispatch {
            ready,
            parked,
            runs,
            seq,
            in_flight: 0,
            completions: Vec::new(),
            log: Vec::new(),
            error: None,
            weighted,
            target_workers: floor,
            peak_workers: floor,
        });
        let ready_for_work = Condvar::new();

        std::thread::scope(|scope| {
            for id in 0..ceiling {
                let state = &state;
                let cvar = &ready_for_work;
                let params = WorkerParams {
                    id,
                    floor,
                    ceiling,
                    lease,
                    max_passes,
                    max_retries,
                };
                scope.spawn(move || worker_loop(state, cvar, params));
            }
        });

        // a worker that panicked outside the contained lease step poisons
        // the lock; the dispatch state itself is still consistent (workers
        // only mutate it under short, panic-free critical sections), so
        // recover it rather than abandoning every sweeper inside
        let dispatch = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        // return every sweeper to its task slot
        for unit in dispatch.parked.into_iter().flatten() {
            self.tasks[unit.task].units[unit.folder] = Some(unit.sweeper);
        }
        if let Some(e) = dispatch.error {
            return Err(e);
        }

        let mut report = FleetReport {
            total: SweepReport {
                converged: true,
                ..SweepReport::default()
            },
            leases: dispatch.log,
            workers: ceiling,
            peak_workers: dispatch.peak_workers,
            ..FleetReport::default()
        };
        for run_idx in dispatch.completions {
            let run = &dispatch.runs[run_idx];
            let completed_at = run.completed_at.expect("completions are timestamped");
            let mut group_report = run.report;
            group_report.converged = run.all_converged;
            group_report.elapsed = completed_at.duration_since(t0);
            report.total.absorb(&group_report);
            report.retries += run.retries;
            report.groups.push(GroupSweepReport {
                group: run.group.clone(),
                stamp: run.stamp,
                report: group_report,
                leases: run.leases,
                retries: run.retries,
                overshoot: completed_at
                    .duration_since(run.armed_at)
                    .saturating_sub(self.config.deadline),
            });
            // a served backlog disarms its task
            let entry = &mut self.tasks[run.task];
            entry.stamp = None;
            entry.armed_at = None;
        }
        report.total.min_live_epoch = None;
        report.total.elapsed = t0.elapsed();
        for warning in report.warnings() {
            telemetry::event("fleet.warning")
                .with("detail", warning)
                .emit();
        }
        Ok(report)
    }
}

impl core::fmt::Debug for SweepScheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SweepScheduler({} workers, {} groups, {} armed)",
            self.config.workers,
            self.tasks.len(),
            self.tasks.iter().filter(|t| t.stamp.is_some()).count()
        )
    }
}

/// A unit checked out into a fleet run.
struct ActiveUnit {
    task: TaskId,
    run: usize,
    folder: usize,
    sweeper: Sweeper,
    pass: Option<SweepPass>,
    passes: usize,
    /// Leases this unit lost to panics or transient faults (capped by
    /// [`FleetConfig::max_retries`]).
    retries: usize,
}

/// Per-armed-task bookkeeping during a fleet run.
struct TaskRun {
    task: TaskId,
    group: String,
    stamp: u64,
    armed_at: Instant,
    /// Units not yet retired (converged or pass-capped).
    outstanding: usize,
    all_converged: bool,
    report: SweepReport,
    leases: u64,
    retries: u64,
    completed_at: Option<Instant>,
    /// Weighted-fair share of the fleet.
    weight: u32,
    /// Virtual time consumed: `sum(max(consumed, 1)) * VTIME_SCALE / weight`
    /// over this run's completed leases. Orders the ready queue when the
    /// run is weighted.
    vtime: u64,
    /// Minimum gap between two lease grants, when rate-capped.
    lease_gap: Option<Duration>,
    /// Earliest instant the next lease may be granted (rate cap).
    next_allowed: Option<Instant>,
}

/// Fixed-point scale of one work unit of virtual time, so integer
/// division by the weight keeps sub-unit resolution.
const VTIME_SCALE: u64 = 65_536;

/// A ready unit in the priority queue. `key` is the primary order: always
/// 0 in an unweighted run — where the old `(stamp, seq)` staleness order
/// decides, bit-identically to the pre-QoS scheduler — and the owning
/// group's virtual time at push time in a weighted run, so the group
/// furthest below its fair share is served first.
#[derive(PartialEq, Eq)]
struct Ready {
    key: u64,
    stamp: u64,
    seq: u64,
    slot: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the smallest
        // (key, stamp, seq) is popped first
        (other.key, other.stamp, other.seq).cmp(&(self.key, self.stamp, self.seq))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shared dispatch state of one fleet run.
struct Dispatch {
    ready: BinaryHeap<Ready>,
    parked: Vec<Option<ActiveUnit>>,
    runs: Vec<TaskRun>,
    seq: u64,
    in_flight: usize,
    /// Run indices in completion order.
    completions: Vec<usize>,
    log: Vec<LeaseRecord>,
    error: Option<DataError>,
    /// Whether any armed run carries a non-default weight (flips the
    /// ready-queue order from staleness to virtual time).
    weighted: bool,
    /// Workers currently allowed to lease: ids below this are active, ids
    /// at or above it park on the condvar until a scale-up.
    target_workers: usize,
    /// High-water mark of `target_workers` over the run.
    peak_workers: usize,
}

impl Dispatch {
    /// The ready-queue key a re-queued unit of `run` gets under the
    /// current ordering mode.
    fn requeue_key(&self, run: usize) -> u64 {
        if self.weighted {
            self.runs[run].vtime
        } else {
            0
        }
    }
}

/// Recovers the dispatch guard from a poisoned lock. A sibling worker's
/// panic between critical sections (the contained lease step re-raises
/// nothing; this covers panics in the dispatch bookkeeping itself) must
/// not wedge the other `W - 1` workers: the state under the lock is
/// mutated only in short, complete transactions, so the data is sound
/// even when the poison flag is set.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Per-worker parameters of one fleet run.
#[derive(Clone, Copy)]
struct WorkerParams {
    /// This worker's dense id; ids at or above the dispatch target park.
    id: usize,
    /// Autoscaling floor (the target never drops below it).
    floor: usize,
    /// Autoscaling ceiling (the target never rises above it).
    ceiling: usize,
    lease: usize,
    max_passes: usize,
    max_retries: usize,
}

/// What the ready queue had for a worker asking for a lease.
enum Grant {
    /// A grantable unit (already popped).
    Unit(Ready),
    /// Nothing queued at all.
    Empty,
    /// Everything queued belongs to rate-capped groups still inside their
    /// lease gap; retry at this instant.
    Deferred(Instant),
}

/// Pops the best *grantable* ready unit: rate-capped groups still inside
/// their lease gap are skipped (popped into a stash and pushed back), so
/// a capped tenant defers only itself, never the grants behind it.
fn next_grant(guard: &mut Dispatch, now: Instant) -> Grant {
    let mut stash = Vec::new();
    let mut granted = None;
    let mut earliest: Option<Instant> = None;
    while let Some(r) = guard.ready.pop() {
        let run = guard.parked[r.slot]
            .as_ref()
            .expect("a ready unit is parked")
            .run;
        match guard.runs[run].next_allowed {
            Some(at) if at > now => {
                earliest = Some(earliest.map_or(at, |e| e.min(at)));
                stash.push(r);
            }
            _ => {
                granted = Some(r);
                break;
            }
        }
    }
    guard.ready.extend(stash);
    match (granted, earliest) {
        (Some(r), _) => Grant::Unit(r),
        (None, Some(at)) => Grant::Deferred(at),
        (None, None) => Grant::Empty,
    }
}

/// One fleet worker: lease the best ready unit (stalest stamp, or lowest
/// virtual time in a weighted run), run one pass step outside the lock,
/// fold the outcome back in, repeat until the run quiesces (or errors).
///
/// Workers whose id is at or above the dispatch target park on the
/// condvar; the target follows the ready-queue depth between the
/// configured floor and ceiling (`fleet.scale_up` / `fleet.scale_down`).
///
/// A step that panics or fails transiently does not abort the run: the
/// unit's partial counters are salvaged, its in-progress pass is dropped
/// (the next lease re-scans, rediscovering any half-migrated leftovers),
/// and it is re-queued under the same staleness stamp — up to
/// `max_retries` lost leases, after which it retires unconverged.
fn worker_loop(state: &Mutex<Dispatch>, cvar: &Condvar, p: WorkerParams) {
    let WorkerParams {
        id,
        floor,
        ceiling,
        lease,
        max_passes,
        max_retries,
    } = p;
    let mut guard = recover(state.lock());
    loop {
        let granted = loop {
            // run over (or aborted): everyone exits, parked or not
            if guard.error.is_some() || (guard.ready.is_empty() && guard.in_flight == 0) {
                cvar.notify_all();
                return;
            }
            // parked beyond the current target: sleep until a scale-up
            // (or the run's end) wakes us
            if id >= guard.target_workers {
                guard = recover(cvar.wait(guard));
                continue;
            }
            if guard.ready.is_empty() {
                // idle active worker; the topmost one hands its slot back
                // (never below the floor), the rest wait for re-queues
                if id >= floor && id + 1 == guard.target_workers {
                    guard.target_workers -= 1;
                    let _rid = telemetry::request_scope();
                    telemetry::event("fleet.scale_down")
                        .with("target", guard.target_workers)
                        .with("in_flight", guard.in_flight)
                        .emit();
                    continue;
                }
                guard = recover(cvar.wait(guard));
                continue;
            }
            // backlog outruns the active set: raise the target and wake a
            // parked worker before taking our own lease
            if guard.ready.len() > guard.target_workers && guard.target_workers < ceiling {
                guard.target_workers += 1;
                guard.peak_workers = guard.peak_workers.max(guard.target_workers);
                let _rid = telemetry::request_scope();
                telemetry::event("fleet.scale_up")
                    .with("target", guard.target_workers)
                    .with("ready", guard.ready.len())
                    .emit();
                cvar.notify_all();
            }
            match next_grant(&mut guard, Instant::now()) {
                Grant::Unit(r) => break r,
                Grant::Empty => guard = recover(cvar.wait(guard)),
                Grant::Deferred(at) => {
                    // every queued unit is rate-deferred: sleep out the
                    // shortest gap (a re-queue elsewhere still wakes us)
                    let timeout = at.saturating_duration_since(Instant::now());
                    guard = cvar
                        .wait_timeout(guard, timeout)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        };
        // stamp the group's rate gap at grant time, so the cap bounds the
        // grant rate no matter how fast leases complete
        let granted_run = guard.parked[granted.slot]
            .as_ref()
            .expect("a ready unit is parked")
            .run;
        if let Some(gap) = guard.runs[granted_run].lease_gap {
            guard.runs[granted_run].next_allowed = Some(Instant::now() + gap);
        }
        let remaining_min_stamp = guard.ready.peek().map(|r| r.stamp);
        let mut unit = guard.parked[granted.slot]
            .take()
            .expect("a ready unit is parked");
        guard.in_flight += 1;
        // the grant is logged at grant time, so the log really is in grant
        // order even with concurrent workers; `consumed` is backfilled
        // after the step
        let log_idx = guard.log.len();
        let record = LeaseRecord {
            group: guard.runs[unit.run].group.clone(),
            stamp: granted.stamp,
            remaining_min_stamp,
            consumed: 0,
            failure: None,
        };
        let group_name = record.group.clone();
        guard.log.push(record);
        guard.runs[unit.run].leases += 1;
        drop(guard);

        // the lease itself: scan on the first step of a pass, then one
        // bounded migration increment — all outside the lock, and inside
        // a panic guard so an unwinding worker costs one lease, not the
        // whole fleet. Each lease is its own causal request: the span's
        // request id threads through every store request the step issues.
        let _rid = telemetry::request_scope();
        let lease_span = telemetry::span("fleet.lease")
            .with("group", group_name.as_str())
            .with("stamp", granted.stamp)
            .with("folder", unit.folder)
            .enter();
        let outcome: Result<usize, DataError> =
            match catch_unwind(AssertUnwindSafe(|| -> Result<usize, DataError> {
                if unit.pass.is_none() {
                    unit.pass = Some(unit.sweeper.begin_pass()?);
                    unit.passes += 1;
                }
                let pass = unit.pass.as_mut().expect("pass just ensured");
                if pass.is_drained() {
                    return Ok(0);
                }
                pass.step(&mut unit.sweeper, lease)
            })) {
                Ok(result) => result,
                Err(payload) => Err(DataError::WorkerPanic(panic_note(&*payload))),
            };
        match &outcome {
            Ok(consumed) => lease_span.record("consumed", *consumed),
            Err(e) => lease_span.record("failure", e.to_string()),
        }
        drop(lease_span);

        guard = recover(state.lock());
        guard.in_flight -= 1;
        // charge the lease to the group's virtual time: a scan-only or
        // failed lease still consumed a worker slot, so it costs at least
        // one unit — scaled down by the group's weight
        {
            let run = &mut guard.runs[unit.run];
            let consumed_units = match &outcome {
                Ok(consumed) => *consumed as u64,
                Err(_) => 0,
            };
            run.vtime += consumed_units.max(1) * VTIME_SCALE / u64::from(run.weight);
        }
        match outcome {
            Err(e) if e.is_transient() => {
                // the lease is lost, the unit is not: salvage whatever the
                // partial pass already migrated (per-item folding in
                // `SweepPass::step` keeps those counters coherent), then
                // force a re-scan so anything dropped mid-migration is
                // rediscovered — it is still stale, so the scan finds it
                let run = unit.run;
                if let Some(partial) = unit.pass.take() {
                    guard.runs[run].report.absorb_counters(&partial.finish());
                }
                guard.log[log_idx].failure = Some(e.to_string());
                guard.runs[run].retries += 1;
                unit.retries += 1;
                if unit.retries > max_retries {
                    // a store that never recovers must not wedge the run:
                    // retire the unit unconverged, like a pass-capped one
                    telemetry::event("fleet.retire")
                        .with("group", group_name.as_str())
                        .with("stamp", granted.stamp)
                        .with("folder", unit.folder)
                        .with("converged", false)
                        .emit();
                    guard.runs[run].all_converged = false;
                    guard.runs[run].outstanding -= 1;
                    if guard.runs[run].outstanding == 0 {
                        guard.runs[run].completed_at = Some(Instant::now());
                        guard.completions.push(run);
                    }
                    guard.parked[granted.slot] = Some(unit);
                } else {
                    // re-queue under the same stamp: the backlog's age is a
                    // property of the rotation, not of how many leases died
                    telemetry::event("fleet.requeue")
                        .with("group", group_name.as_str())
                        .with("stamp", granted.stamp)
                        .with("folder", unit.folder)
                        .with("retries", unit.retries)
                        .emit();
                    let key = guard.requeue_key(unit.run);
                    guard.parked[granted.slot] = Some(unit);
                    let seq = guard.seq;
                    guard.seq += 1;
                    guard.ready.push(Ready {
                        key,
                        stamp: granted.stamp,
                        seq,
                        slot: granted.slot,
                    });
                }
            }
            Err(e) => {
                unit.pass = None;
                guard.log[log_idx].failure = Some(e.to_string());
                guard.parked[granted.slot] = Some(unit);
                if guard.error.is_none() {
                    guard.error = Some(e);
                }
            }
            Ok(consumed) => {
                let run = unit.run;
                guard.log[log_idx].consumed = consumed;
                let drained = unit
                    .pass
                    .as_ref()
                    .expect("pass survives a successful lease")
                    .is_drained();
                if drained {
                    let pass_report = unit
                        .pass
                        .take()
                        .expect("pass present when drained")
                        .finish();
                    let folder_converged = pass_report.converged;
                    guard.runs[run].report.absorb_counters(&pass_report);
                    if folder_converged || unit.passes >= max_passes {
                        // unit retires
                        telemetry::event("fleet.retire")
                            .with("group", group_name.as_str())
                            .with("stamp", granted.stamp)
                            .with("folder", unit.folder)
                            .with("converged", folder_converged)
                            .emit();
                        guard.runs[run].all_converged &= folder_converged;
                        guard.runs[run].outstanding -= 1;
                        if guard.runs[run].outstanding == 0 {
                            guard.runs[run].completed_at = Some(Instant::now());
                            guard.completions.push(run);
                        }
                        guard.parked[granted.slot] = Some(unit);
                    } else {
                        // conflicted-still-stale leftovers: re-scan on the
                        // next lease, same stamp (the backlog is not served
                        // until the folder really converges)
                        let key = guard.requeue_key(unit.run);
                        guard.parked[granted.slot] = Some(unit);
                        let seq = guard.seq;
                        guard.seq += 1;
                        guard.ready.push(Ready {
                            key,
                            stamp: granted.stamp,
                            seq,
                            slot: granted.slot,
                        });
                    }
                } else {
                    let key = guard.requeue_key(unit.run);
                    guard.parked[granted.slot] = Some(unit);
                    let seq = guard.seq;
                    guard.seq += 1;
                    guard.ready.push(Ready {
                        key,
                        stamp: granted.stamp,
                        seq,
                        slot: granted.slot,
                    });
                }
            }
        }
        cvar.notify_all();
    }
}
