//! [`SweepScheduler`]: many groups' lazy-window convergence on one shared,
//! bounded worker fleet.
//!
//! A [`crate::SweepPool`] converges **one** group with one worker per data
//! shard. A provider hosting G groups cannot afford G dedicated pools —
//! that is G × shards threads for work that is bursty and mostly idle. The
//! scheduler inverts the shape: a fixed fleet of `W` workers
//! ([`FleetConfig::workers`]) serves every registered group's
//! [`SweepTask`], so "W workers, G groups" is an explicit configuration
//! instead of an emergent thread count.
//!
//! * **Work units.** Each task contributes one unit per data folder; a
//!   unit's lease runs one [`crate::SweepPass`] step — scan the folder once
//!   (first lease of a pass), then migrate up to [`FleetConfig::lease`]
//!   stale objects — exactly the primitive [`crate::Sweeper`] composes for
//!   the single-group path.
//! * **Staleness priority.** Arming a task stamps it with a monotone
//!   sequence number; ready units are leased oldest stamp first (the group
//!   furthest behind its lazy-window deadline runs first), FIFO within a
//!   stamp. A task keeps its stamp until its whole backlog converges, so a
//!   fresher rotation can never leapfrog an older one.
//! * **Re-arming.** [`SweepScheduler::watch`] blocks on the groups'
//!   metadata folders with at most `W` poll threads (cheap folder-version
//!   cursors, no object traffic), probes changed groups for an epoch move,
//!   and arms exactly those — idle groups cost nothing.
//!
//! [`SweepScheduler::converge_all`] then drives the fleet to quiescence on
//! `W` scoped threads and reports per-group attribution: a labelled
//! [`GroupSweepReport`] per converged backlog (completion order, lease
//! counts, deadline overshoot) plus the grant-by-grant [`LeaseRecord`] log
//! the fairness tests assert against.

use crate::error::{panic_note, DataError};
use crate::metrics::{DataMetricsSnapshot, FleetMetrics};
use crate::session::ClientSession;
use crate::sweeper::{SweepConfig, SweepPass, SweepReport, Sweeper};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Shape of the shared sweep fleet.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Worker threads shared by every registered group (`W`). The
    /// scheduler never runs more than this many concurrent leases, no
    /// matter how many groups are registered.
    pub workers: usize,
    /// Objects migrated per lease: the increment in which a unit's pass is
    /// stepped before the worker goes back to the queue, bounding how long
    /// a large group can hold a worker away from a staler one.
    pub lease: usize,
    /// Per-group lazy-window target: a group converging later than
    /// `deadline` after its arming shows up as
    /// [`GroupSweepReport::overshoot`]. The deadline prioritizes work, it
    /// never abandons it.
    pub deadline: Duration,
    /// Safety cap on re-scans of one folder within a single backlog (a
    /// writer with a frozen pre-rotation ring can keep re-sealing objects
    /// at a retired epoch, forcing re-passes). When hit, the unit retires
    /// unconverged and the group's report says so.
    pub max_passes: usize,
    /// Safety cap on re-queues of one unit after leases lost to worker
    /// panics or transient store faults. When hit, the unit retires
    /// unconverged (with its failures in the lease log) instead of cycling
    /// through a store that never recovers.
    pub max_retries: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            lease: 8,
            deadline: Duration::from_secs(2),
            max_passes: 32,
            max_retries: 8,
        }
    }
}

/// One group's registration with the fleet: a per-data-folder set of
/// sweeper sessions, labelled by the group they serve.
pub struct SweepTask {
    units: Vec<Sweeper>,
}

impl SweepTask {
    /// Builds a task from one privileged session per data folder (session
    /// `i` of `n` sweeps folder `i`), all pacing with `config`. The
    /// sessions must share a group and agree on the data-shard count —
    /// typically they are clones-by-construction of the same sweeper
    /// identity, exactly like a [`crate::SweepPool`]'s.
    ///
    /// # Panics
    /// Panics if `sessions` is empty, disagrees on group or shard count,
    /// or its length differs from the sessions' data-shard count.
    pub fn new(sessions: Vec<ClientSession>, config: SweepConfig) -> Self {
        assert!(
            !sessions.is_empty(),
            "at least one unit session is required"
        );
        let group = sessions[0].group().to_string();
        let shards = sessions[0].data_shards();
        assert_eq!(
            sessions.len(),
            shards,
            "one session per data folder is required"
        );
        for s in &sessions {
            assert_eq!(s.group(), group, "task sessions must share a group");
            assert_eq!(
                s.data_shards(),
                shards,
                "task sessions must agree on the data-shard count"
            );
        }
        let units = sessions
            .into_iter()
            .enumerate()
            .map(|(i, session)| Sweeper::with_assignment(session, config, i, shards))
            .collect();
        Self { units }
    }

    /// The group this task sweeps.
    pub fn group(&self) -> &str {
        self.units[0].session().group()
    }
}

/// Identifier of a registered task (dense, assigned by registration
/// order).
pub type TaskId = usize;

/// One lease grant, as the dispatcher saw it — the raw material of the
/// fairness assertions.
#[derive(Clone, Debug)]
pub struct LeaseRecord {
    /// Group the leased unit belongs to.
    pub group: String,
    /// The group's staleness stamp at grant time (lower = armed earlier =
    /// more behind).
    pub stamp: u64,
    /// The lowest stamp still waiting in the ready queue *after* this
    /// grant — `None` when the queue drained. Priority says
    /// `stamp <= remaining_min_stamp` on every record: no lease ever went
    /// to a fresher group while a staler one had a unit ready.
    pub remaining_min_stamp: Option<u64>,
    /// Stale objects consumed from the unit's work-list by this lease
    /// (zero for a scan-only lease of a clean folder, or for a lease that
    /// aborted on an error).
    pub consumed: usize,
    /// Why this lease failed, when it did: the worker panicked or hit a
    /// transient store fault, and the unit was re-queued (or retired at
    /// the [`FleetConfig::max_retries`] cap) under the same stamp.
    pub failure: Option<String>,
}

/// One group's converged backlog, attributed by label — what
/// "who did what" looks like without parsing logs.
#[derive(Clone, Debug)]
pub struct GroupSweepReport {
    /// The group swept.
    pub group: String,
    /// Staleness stamp the backlog was served under.
    pub stamp: u64,
    /// Merged sweep counters over every unit and pass of this backlog
    /// (`converged` is the final per-unit state, not an AND over
    /// intermediate passes; `elapsed` is this group's convergence wall
    /// clock measured from the fleet run's start).
    pub report: SweepReport,
    /// Leases this backlog consumed.
    pub leases: u64,
    /// Leases lost to worker panics or transient store faults and
    /// re-queued (see [`LeaseRecord::failure`] for the cause of each).
    pub retries: u64,
    /// How far past `armed_at + deadline` the backlog converged
    /// (zero when the deadline was met).
    pub overshoot: Duration,
}

/// Outcome of one [`SweepScheduler::converge_all`] fleet run.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Per-group reports **in completion order**: `groups[0]` finished its
    /// backlog first. Staleness priority makes the most-behind group
    /// finish before the freshest one whenever the fleet is meaningfully
    /// oversubscribed.
    pub groups: Vec<GroupSweepReport>,
    /// Fleet-level aggregate: counters summed, `converged` AND-ed,
    /// `elapsed` the true wall clock of the run. `min_live_epoch` is
    /// `None` — epoch floors are per-group quantities (each group runs its
    /// own epoch counter); take them from [`FleetReport::groups`].
    pub total: SweepReport,
    /// Every lease grant, in grant order.
    pub leases: Vec<LeaseRecord>,
    /// Total leases lost to worker panics or transient store faults and
    /// re-queued, across every group.
    pub retries: u64,
    /// Worker threads the run used.
    pub workers: usize,
}

impl FleetReport {
    /// Completion order as group names.
    pub fn completion_order(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.group.as_str()).collect()
    }

    /// The report for `group`, if it completed a backlog in this run.
    pub fn group(&self, group: &str) -> Option<&GroupSweepReport> {
        self.groups.iter().find(|g| g.group == group)
    }

    /// The worst per-group deadline overshoot of the run.
    pub fn worst_overshoot(&self) -> Duration {
        self.groups
            .iter()
            .map(|g| g.overshoot)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Human-readable anomalies of the run, in a stable order: one warning
    /// per failed lease (worker panic or transient store fault, in grant
    /// order), then one per group that retired unconverged (in completion
    /// order). An empty iterator means a clean run.
    pub fn warnings(&self) -> impl Iterator<Item = String> + '_ {
        let lost_leases = self.leases.iter().filter_map(|l| {
            l.failure.as_ref().map(|cause| {
                format!(
                    "lease for group `{}` (stamp {}) lost: {cause}",
                    l.group, l.stamp
                )
            })
        });
        let stuck_groups = self.groups.iter().filter(|g| !g.report.converged).map(|g| {
            format!(
                "group `{}` retired unconverged after {} leases ({} retried)",
                g.group, g.leases, g.retries
            )
        });
        lost_leases.chain(stuck_groups)
    }
}

/// A registered task plus its scheduling state.
struct TaskEntry {
    group: String,
    /// `None` while a unit is checked out into a fleet run.
    units: Vec<Option<Sweeper>>,
    /// Arm stamp of the oldest unserved rotation; `None` when idle.
    stamp: Option<u64>,
    /// When that oldest rotation was observed (deadline accounting).
    armed_at: Option<Instant>,
    /// Metadata-folder version cursor for the cheap watch pass.
    cursor: u64,
}

/// The multi-group sweep scheduler; see the module docs.
pub struct SweepScheduler {
    config: FleetConfig,
    tasks: Vec<TaskEntry>,
    /// Monotone arm-stamp source.
    clock: u64,
}

impl SweepScheduler {
    /// An empty scheduler with the given fleet shape.
    ///
    /// # Panics
    /// Panics if `config.workers` or `config.lease` is zero.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.workers >= 1, "at least one fleet worker is required");
        assert!(config.lease >= 1, "the lease increment must be positive");
        Self {
            config,
            tasks: Vec::new(),
            clock: 0,
        }
    }

    /// The fleet shape.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Registers a group's task and returns its id. The group's current
    /// metadata version becomes the watch baseline: rotations published
    /// *before* registration are not auto-detected — [`SweepScheduler::arm`]
    /// such a group explicitly.
    pub fn register(&mut self, task: SweepTask) -> TaskId {
        let group = task.group().to_string();
        // a store fault here must not block registration: baseline 0 at
        // worst makes the first watch pass probe the group spuriously
        let cursor = task.units[0]
            .session()
            .store()
            .try_folder_version(&group)
            .unwrap_or(0);
        self.tasks.push(TaskEntry {
            group,
            units: task.units.into_iter().map(Some).collect(),
            stamp: None,
            armed_at: None,
            cursor,
        });
        self.tasks.len() - 1
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Registered group names, in registration (task-id) order.
    pub fn groups(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.group.as_str()).collect()
    }

    /// Whether `task` currently has an unserved backlog.
    pub fn is_armed(&self, task: TaskId) -> bool {
        self.tasks[task].stamp.is_some()
    }

    /// Marks `task` stale now: its units join the next fleet run. A task
    /// armed while already pending keeps its original (older) stamp and
    /// deadline — staleness is measured from the oldest unserved rotation.
    pub fn arm(&mut self, task: TaskId) {
        let entry = &mut self.tasks[task];
        if entry.stamp.is_none() {
            entry.stamp = Some(self.clock);
            entry.armed_at = Some(Instant::now());
            telemetry::event("fleet.arm")
                .with("group", entry.group.as_str())
                .with("stamp", self.clock)
                .emit();
            self.clock += 1;
        }
    }

    /// Arms every registered task (a fleet-wide rotation wave).
    pub fn arm_all(&mut self) {
        for task in 0..self.tasks.len() {
            self.arm(task);
        }
    }

    /// Watches every registered group's metadata folder for up to
    /// `timeout` and arms the tasks whose key epoch moved, returning how
    /// many were (newly) armed. Detection is two-staged so idle groups
    /// cost nothing: a folder-version compare first (no object traffic at
    /// all), then a zero-timeout control-plane probe only for folders that
    /// actually changed (structural changes like pure adds update the
    /// cursor without arming). The blocking wait uses at most
    /// [`FleetConfig::workers`] poll threads regardless of the group
    /// count.
    ///
    /// # Errors
    /// Control-plane failures from a changed group's probe.
    pub fn watch(&mut self, timeout: Duration) -> Result<usize, DataError> {
        let deadline = Instant::now() + timeout;
        loop {
            let armed = self.check_and_arm()?;
            if armed > 0 {
                return Ok(armed);
            }
            let now = Instant::now();
            if now >= deadline || self.tasks.is_empty() {
                return Ok(0);
            }
            self.wait_any(deadline);
        }
    }

    /// One cheap detection pass: folder-version compares plus epoch probes
    /// for the folders that moved. Arms and counts the stale tasks.
    fn check_and_arm(&mut self) -> Result<usize, DataError> {
        let mut armed = 0;
        for task in 0..self.tasks.len() {
            let entry = &mut self.tasks[task];
            let was_idle = entry.stamp.is_none();
            let watcher = entry.units[0]
                .as_mut()
                .expect("units are parked between fleet runs");
            // a faulted version probe skips the group for this pass only:
            // the cursor is untouched, so the change stays detectable
            let Ok(version) = watcher.session().store().try_folder_version(&entry.group) else {
                continue;
            };
            if version == entry.cursor {
                continue;
            }
            // the probe also re-arms the watcher's key ring for free; a
            // rotation observed by an already-armed task merges into the
            // existing backlog under its (older) stamp. The cursor commits
            // only after the probe succeeds — a transient probe failure
            // must leave the change detectable by the retry.
            let epoch_moved = watcher.poll(Duration::ZERO)?;
            self.tasks[task].cursor = version;
            if epoch_moved && was_idle {
                self.arm(task);
                armed += 1;
            }
        }
        Ok(armed)
    }

    /// Blocks until any registered group's metadata folder moves past its
    /// cursor or `deadline` passes, using at most `workers` threads. Every
    /// thread polls its share of the folders in short slices — a change on
    /// a thread's own folder wakes it instantly, a change elsewhere is
    /// noticed at the next slice boundary (the scoped join waits for every
    /// thread, so nobody may sleep through a sibling's hit) — bounding
    /// detection latency by `slice × ceil(groups / workers)`.
    fn wait_any(&self, deadline: Instant) {
        const SLICE: Duration = Duration::from_millis(20);
        let watches: Vec<(cloud_store::StoreHandle, &str, u64)> = self
            .tasks
            .iter()
            .map(|t| {
                let unit = t.units[0].as_ref().expect("units are parked");
                (unit.session().store().clone(), t.group.as_str(), t.cursor)
            })
            .collect();
        let threads = self.config.workers.min(watches.len()).max(1);
        let hit = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let mine: Vec<&(cloud_store::StoreHandle, &str, u64)> =
                    watches.iter().skip(t).step_by(threads).collect();
                let hit = &hit;
                scope.spawn(move || {
                    while !hit.load(Ordering::Relaxed) {
                        for (store, folder, cursor) in &mine {
                            let budget = deadline.saturating_duration_since(Instant::now());
                            if budget.is_zero() {
                                return;
                            }
                            let poll = store.long_poll(folder, *cursor, SLICE.min(budget));
                            if !poll.timed_out {
                                hit.store(true, Ordering::Relaxed);
                                return;
                            }
                            if hit.load(Ordering::Relaxed) {
                                return;
                            }
                        }
                    }
                });
            }
        });
    }

    /// Fleet-wide counters plus the per-group breakdown (each group's
    /// entry sums its own unit sessions, so the attribution covers exactly
    /// the work this scheduler drove).
    pub fn metrics(&self) -> FleetMetrics {
        let by_group: Vec<(String, DataMetricsSnapshot)> = self
            .tasks
            .iter()
            .map(|t| {
                let merged = t
                    .units
                    .iter()
                    .map(|u| {
                        u.as_ref()
                            .expect("units are parked between fleet runs")
                            .metrics()
                    })
                    .fold(DataMetricsSnapshot::default(), |acc, m| acc.merge(&m));
                (t.group.clone(), merged)
            })
            .collect();
        let total = by_group
            .iter()
            .fold(DataMetricsSnapshot::default(), |acc, (_, m)| acc.merge(m));
        FleetMetrics { total, by_group }
    }

    /// Drives every armed task's backlog to convergence on `W` shared
    /// worker threads and returns the attributed fleet report. Armed tasks
    /// are disarmed on completion (even an unconverged completion — see
    /// [`FleetConfig::max_passes`] — so a stuck group surfaces in its
    /// report instead of wedging the fleet); idle tasks are untouched. An
    /// empty armed set returns an empty report immediately.
    ///
    /// # Errors
    /// The first *fatal* worker error aborts the run (remaining leases
    /// are dropped, sweepers are returned to their tasks, armings are
    /// kept so the run can be retried). Transient store faults and worker
    /// panics are not fatal: the lost lease's unit is re-queued under the
    /// same stamp — see [`FleetConfig::max_retries`] and
    /// [`LeaseRecord::failure`].
    pub fn converge_all(&mut self) -> Result<FleetReport, DataError> {
        let t0 = Instant::now();
        let lease = self.config.lease;
        let max_passes = self.config.max_passes.max(1);
        let max_retries = self.config.max_retries;

        // check armed tasks' units out into the dispatch state
        let mut parked: Vec<Option<ActiveUnit>> = Vec::new();
        let mut runs: Vec<TaskRun> = Vec::new();
        let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
        let mut seq = 0u64;
        for (task, entry) in self.tasks.iter_mut().enumerate() {
            let Some(stamp) = entry.stamp else { continue };
            let run = runs.len();
            for (folder, slot) in entry.units.iter_mut().enumerate() {
                let sweeper = slot.take().expect("unit already checked out");
                ready.push(Ready {
                    stamp,
                    seq,
                    slot: parked.len(),
                });
                seq += 1;
                parked.push(Some(ActiveUnit {
                    task,
                    run,
                    folder,
                    sweeper,
                    pass: None,
                    passes: 0,
                    retries: 0,
                }));
            }
            runs.push(TaskRun {
                task,
                group: entry.group.clone(),
                stamp,
                armed_at: entry.armed_at.expect("armed tasks carry a timestamp"),
                outstanding: entry.units.len(),
                all_converged: true,
                report: SweepReport::default(),
                leases: 0,
                retries: 0,
                completed_at: None,
            });
        }
        if runs.is_empty() {
            // an idle fleet is a quiescent one: same semantics as the
            // non-empty path, whose AND over zero groups is true
            return Ok(FleetReport {
                workers: self.config.workers,
                total: SweepReport {
                    converged: true,
                    ..SweepReport::default()
                },
                ..FleetReport::default()
            });
        }

        let state = Mutex::new(Dispatch {
            ready,
            parked,
            runs,
            seq,
            in_flight: 0,
            completions: Vec::new(),
            log: Vec::new(),
            error: None,
        });
        let ready_for_work = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                scope
                    .spawn(|| worker_loop(&state, &ready_for_work, lease, max_passes, max_retries));
            }
        });

        // a worker that panicked outside the contained lease step poisons
        // the lock; the dispatch state itself is still consistent (workers
        // only mutate it under short, panic-free critical sections), so
        // recover it rather than abandoning every sweeper inside
        let dispatch = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        // return every sweeper to its task slot
        for unit in dispatch.parked.into_iter().flatten() {
            self.tasks[unit.task].units[unit.folder] = Some(unit.sweeper);
        }
        if let Some(e) = dispatch.error {
            return Err(e);
        }

        let mut report = FleetReport {
            total: SweepReport {
                converged: true,
                ..SweepReport::default()
            },
            leases: dispatch.log,
            workers: self.config.workers,
            ..FleetReport::default()
        };
        for run_idx in dispatch.completions {
            let run = &dispatch.runs[run_idx];
            let completed_at = run.completed_at.expect("completions are timestamped");
            let mut group_report = run.report;
            group_report.converged = run.all_converged;
            group_report.elapsed = completed_at.duration_since(t0);
            report.total.absorb(&group_report);
            report.retries += run.retries;
            report.groups.push(GroupSweepReport {
                group: run.group.clone(),
                stamp: run.stamp,
                report: group_report,
                leases: run.leases,
                retries: run.retries,
                overshoot: completed_at
                    .duration_since(run.armed_at)
                    .saturating_sub(self.config.deadline),
            });
            // a served backlog disarms its task
            let entry = &mut self.tasks[run.task];
            entry.stamp = None;
            entry.armed_at = None;
        }
        report.total.min_live_epoch = None;
        report.total.elapsed = t0.elapsed();
        for warning in report.warnings() {
            telemetry::event("fleet.warning")
                .with("detail", warning)
                .emit();
        }
        Ok(report)
    }
}

impl core::fmt::Debug for SweepScheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SweepScheduler({} workers, {} groups, {} armed)",
            self.config.workers,
            self.tasks.len(),
            self.tasks.iter().filter(|t| t.stamp.is_some()).count()
        )
    }
}

/// A unit checked out into a fleet run.
struct ActiveUnit {
    task: TaskId,
    run: usize,
    folder: usize,
    sweeper: Sweeper,
    pass: Option<SweepPass>,
    passes: usize,
    /// Leases this unit lost to panics or transient faults (capped by
    /// [`FleetConfig::max_retries`]).
    retries: usize,
}

/// Per-armed-task bookkeeping during a fleet run.
struct TaskRun {
    task: TaskId,
    group: String,
    stamp: u64,
    armed_at: Instant,
    /// Units not yet retired (converged or pass-capped).
    outstanding: usize,
    all_converged: bool,
    report: SweepReport,
    leases: u64,
    retries: u64,
    completed_at: Option<Instant>,
}

/// A ready unit in the staleness-priority queue: oldest stamp first, FIFO
/// within a stamp.
#[derive(PartialEq, Eq)]
struct Ready {
    stamp: u64,
    seq: u64,
    slot: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the smallest (stamp, seq)
        // is popped first
        (other.stamp, other.seq).cmp(&(self.stamp, self.seq))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shared dispatch state of one fleet run.
struct Dispatch {
    ready: BinaryHeap<Ready>,
    parked: Vec<Option<ActiveUnit>>,
    runs: Vec<TaskRun>,
    seq: u64,
    in_flight: usize,
    /// Run indices in completion order.
    completions: Vec<usize>,
    log: Vec<LeaseRecord>,
    error: Option<DataError>,
}

/// Recovers the dispatch guard from a poisoned lock. A sibling worker's
/// panic between critical sections (the contained lease step re-raises
/// nothing; this covers panics in the dispatch bookkeeping itself) must
/// not wedge the other `W - 1` workers: the state under the lock is
/// mutated only in short, complete transactions, so the data is sound
/// even when the poison flag is set.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// One fleet worker: lease the stalest ready unit, run one pass step
/// outside the lock, fold the outcome back in, repeat until the run
/// quiesces (or errors).
///
/// A step that panics or fails transiently does not abort the run: the
/// unit's partial counters are salvaged, its in-progress pass is dropped
/// (the next lease re-scans, rediscovering any half-migrated leftovers),
/// and it is re-queued under the same staleness stamp — up to
/// `max_retries` lost leases, after which it retires unconverged.
fn worker_loop(
    state: &Mutex<Dispatch>,
    cvar: &Condvar,
    lease: usize,
    max_passes: usize,
    max_retries: usize,
) {
    let mut guard = recover(state.lock());
    loop {
        while guard.ready.is_empty() && guard.in_flight > 0 && guard.error.is_none() {
            guard = recover(cvar.wait(guard));
        }
        if guard.error.is_some() || guard.ready.is_empty() {
            cvar.notify_all();
            return;
        }
        let granted = guard.ready.pop().expect("checked non-empty");
        let remaining_min_stamp = guard.ready.peek().map(|r| r.stamp);
        let mut unit = guard.parked[granted.slot]
            .take()
            .expect("a ready unit is parked");
        guard.in_flight += 1;
        // the grant is logged at grant time, so the log really is in grant
        // order even with concurrent workers; `consumed` is backfilled
        // after the step
        let log_idx = guard.log.len();
        let record = LeaseRecord {
            group: guard.runs[unit.run].group.clone(),
            stamp: granted.stamp,
            remaining_min_stamp,
            consumed: 0,
            failure: None,
        };
        let group_name = record.group.clone();
        guard.log.push(record);
        guard.runs[unit.run].leases += 1;
        drop(guard);

        // the lease itself: scan on the first step of a pass, then one
        // bounded migration increment — all outside the lock, and inside
        // a panic guard so an unwinding worker costs one lease, not the
        // whole fleet. Each lease is its own causal request: the span's
        // request id threads through every store request the step issues.
        let _rid = telemetry::request_scope();
        let lease_span = telemetry::span("fleet.lease")
            .with("group", group_name.as_str())
            .with("stamp", granted.stamp)
            .with("folder", unit.folder)
            .enter();
        let outcome: Result<usize, DataError> =
            match catch_unwind(AssertUnwindSafe(|| -> Result<usize, DataError> {
                if unit.pass.is_none() {
                    unit.pass = Some(unit.sweeper.begin_pass()?);
                    unit.passes += 1;
                }
                let pass = unit.pass.as_mut().expect("pass just ensured");
                if pass.is_drained() {
                    return Ok(0);
                }
                pass.step(&mut unit.sweeper, lease)
            })) {
                Ok(result) => result,
                Err(payload) => Err(DataError::WorkerPanic(panic_note(&*payload))),
            };
        match &outcome {
            Ok(consumed) => lease_span.record("consumed", *consumed),
            Err(e) => lease_span.record("failure", e.to_string()),
        }
        drop(lease_span);

        guard = recover(state.lock());
        guard.in_flight -= 1;
        match outcome {
            Err(e) if e.is_transient() => {
                // the lease is lost, the unit is not: salvage whatever the
                // partial pass already migrated (per-item folding in
                // `SweepPass::step` keeps those counters coherent), then
                // force a re-scan so anything dropped mid-migration is
                // rediscovered — it is still stale, so the scan finds it
                let run = unit.run;
                if let Some(partial) = unit.pass.take() {
                    guard.runs[run].report.absorb_counters(&partial.finish());
                }
                guard.log[log_idx].failure = Some(e.to_string());
                guard.runs[run].retries += 1;
                unit.retries += 1;
                if unit.retries > max_retries {
                    // a store that never recovers must not wedge the run:
                    // retire the unit unconverged, like a pass-capped one
                    telemetry::event("fleet.retire")
                        .with("group", group_name.as_str())
                        .with("stamp", granted.stamp)
                        .with("folder", unit.folder)
                        .with("converged", false)
                        .emit();
                    guard.runs[run].all_converged = false;
                    guard.runs[run].outstanding -= 1;
                    if guard.runs[run].outstanding == 0 {
                        guard.runs[run].completed_at = Some(Instant::now());
                        guard.completions.push(run);
                    }
                    guard.parked[granted.slot] = Some(unit);
                } else {
                    // re-queue under the same stamp: the backlog's age is a
                    // property of the rotation, not of how many leases died
                    telemetry::event("fleet.requeue")
                        .with("group", group_name.as_str())
                        .with("stamp", granted.stamp)
                        .with("folder", unit.folder)
                        .with("retries", unit.retries)
                        .emit();
                    guard.parked[granted.slot] = Some(unit);
                    let seq = guard.seq;
                    guard.seq += 1;
                    guard.ready.push(Ready {
                        stamp: granted.stamp,
                        seq,
                        slot: granted.slot,
                    });
                }
            }
            Err(e) => {
                unit.pass = None;
                guard.log[log_idx].failure = Some(e.to_string());
                guard.parked[granted.slot] = Some(unit);
                if guard.error.is_none() {
                    guard.error = Some(e);
                }
            }
            Ok(consumed) => {
                let run = unit.run;
                guard.log[log_idx].consumed = consumed;
                let drained = unit
                    .pass
                    .as_ref()
                    .expect("pass survives a successful lease")
                    .is_drained();
                if drained {
                    let pass_report = unit
                        .pass
                        .take()
                        .expect("pass present when drained")
                        .finish();
                    let folder_converged = pass_report.converged;
                    guard.runs[run].report.absorb_counters(&pass_report);
                    if folder_converged || unit.passes >= max_passes {
                        // unit retires
                        telemetry::event("fleet.retire")
                            .with("group", group_name.as_str())
                            .with("stamp", granted.stamp)
                            .with("folder", unit.folder)
                            .with("converged", folder_converged)
                            .emit();
                        guard.runs[run].all_converged &= folder_converged;
                        guard.runs[run].outstanding -= 1;
                        if guard.runs[run].outstanding == 0 {
                            guard.runs[run].completed_at = Some(Instant::now());
                            guard.completions.push(run);
                        }
                        guard.parked[granted.slot] = Some(unit);
                    } else {
                        // conflicted-still-stale leftovers: re-scan on the
                        // next lease, same stamp (the backlog is not served
                        // until the folder really converges)
                        guard.parked[granted.slot] = Some(unit);
                        let seq = guard.seq;
                        guard.seq += 1;
                        guard.ready.push(Ready {
                            stamp: granted.stamp,
                            seq,
                            slot: granted.slot,
                        });
                    }
                } else {
                    guard.parked[granted.slot] = Some(unit);
                    let seq = guard.seq;
                    guard.seq += 1;
                    guard.ready.push(Ready {
                        stamp: granted.stamp,
                        seq,
                        slot: granted.slot,
                    });
                }
            }
        }
        cvar.notify_all();
    }
}
