//! Error type for the data plane.

use cloud_store::{StoreError, VersionConflict};
use core::fmt;

/// Errors surfaced by data-plane sessions, sweepers and coordinators.
///
/// `#[non_exhaustive]`: new failure classes (like the op-log verification
/// evidence that [`acs::AcsError`] grew) may be added without a major
/// bump — match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// Propagated control-plane (admin/client) failure.
    Acs(acs::AcsError),
    /// Propagated IBBE-SGX core failure.
    Core(ibbe_sgx_core::CoreError),
    /// A stored object failed to deserialize.
    WireFormat(&'static str),
    /// The object does not exist in the group's data folder.
    NotFound(String),
    /// The object's DEK is wrapped under an epoch this session holds no key
    /// for — either the reader was revoked before the epoch was issued, or
    /// their ring is stale and a refresh failed.
    UnknownEpoch(u64),
    /// GCM authentication failed (tampered object, or a key that matches
    /// the epoch label but not the actual wrap).
    AuthFailed,
    /// A conditional write lost the compare-and-swap race; re-read the
    /// object (refreshing the cached version) before retrying.
    Conflict(VersionConflict),
    /// The session has never derived key material and a refresh failed.
    NoKeys,
    /// A cloud request was refused or lost (outage or timeout); transient
    /// — retry with backoff (see [`crate::RetryPolicy`]).
    Store(StoreError),
    /// A sweep worker thread panicked; its work unit was (or must be)
    /// re-queued. Carries the panic payload rendered as text.
    WorkerPanic(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Acs(e) => write!(f, "control plane: {e}"),
            DataError::Core(e) => write!(f, "core: {e}"),
            DataError::WireFormat(what) => write!(f, "malformed data object: {what}"),
            DataError::NotFound(name) => write!(f, "no such object: {name}"),
            DataError::UnknownEpoch(e) => write!(f, "no key for epoch {e}"),
            DataError::AuthFailed => write!(f, "object failed to authenticate"),
            DataError::Conflict(c) => write!(f, "write lost the race: {c}"),
            DataError::NoKeys => write!(f, "session holds no key material"),
            DataError::Store(e) => write!(f, "store: {e}"),
            DataError::WorkerPanic(note) => write!(f, "sweep worker panicked: {note}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Acs(e) => Some(e),
            DataError::Core(e) => Some(e),
            DataError::Conflict(c) => Some(c),
            DataError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<acs::AcsError> for DataError {
    fn from(e: acs::AcsError) -> Self {
        DataError::Acs(e)
    }
}

impl From<ibbe_sgx_core::CoreError> for DataError {
    fn from(e: ibbe_sgx_core::CoreError) -> Self {
        DataError::Core(e)
    }
}

impl From<VersionConflict> for DataError {
    fn from(e: VersionConflict) -> Self {
        DataError::Conflict(e)
    }
}

impl From<StoreError> for DataError {
    fn from(e: StoreError) -> Self {
        match e {
            // a lost CAS keeps its dedicated re-read-and-retry contract
            StoreError::Conflict(c) => DataError::Conflict(c),
            other => DataError::Store(other),
        }
    }
}

/// Renders a caught panic payload (`std::thread::Result::Err` /
/// `catch_unwind` error) as the human-readable note carried by
/// [`DataError::WorkerPanic`] and the per-unit failure records.
pub(crate) fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl DataError {
    /// True when a bounded retry (after the store recovers) can clear the
    /// failure without any state repair: injected/real outages and
    /// timeouts, wherever in the stack they surfaced, and worker panics
    /// (whose unit is re-queued). CAS conflicts are *not* transient —
    /// the caller must re-read the object first.
    pub fn is_transient(&self) -> bool {
        match self {
            DataError::Store(e) => e.is_transient(),
            DataError::Acs(e) => e.is_transient(),
            DataError::WorkerPanic(_) => true,
            _ => false,
        }
    }
}
