//! The background re-encryption sweeper: closes the lazy window.
//!
//! After a revocation rotates the group key, objects sealed at retired
//! epochs remain readable to the revoked member *if* they kept their old
//! keys. The lazy policy accepts that window in exchange for an O(1)
//! revocation and bounds it with this sweeper: a privileged member session
//! (the sweeper holds an ordinary USK — SGX is not involved on this side)
//! scans the data folder, re-encrypts every stale object to the current
//! epoch, and is expected to converge within a configured deadline. The
//! eager policy is the degenerate case: one unbounded sweep, synchronously
//! at revocation time.
//!
//! A sweeper can own the whole namespace (the default) or one **shard
//! assignment** of it ([`Sweeper::with_assignment`]): worker `w` of `n`
//! sweeps only the data folders whose index satisfies `idx % n == w`. A
//! [`crate::SweepPool`] builds one worker per shard and drives them
//! concurrently, which is what makes lazy-window convergence scale with the
//! store's shard count.
//!
//! Internally every driving surface decomposes into the same work-unit
//! primitive: [`Sweeper::begin_pass`] scans the assigned folders once and
//! returns a resumable [`SweepPass`], which migrates the stale work-list in
//! bounded [`SweepPass::step`] increments. [`Sweeper::tick`],
//! [`Sweeper::run_until_converged`] and [`Sweeper::sweep_now`] are thin
//! compositions of one pass; the multi-group [`crate::SweepScheduler`]
//! leases the very same steps across many groups' passes from a shared
//! worker fleet.
//!
//! Migrations are CAS writes conditioned on the scanned version, so the
//! sweeper never tramples a concurrent application write — and losing that
//! race is free, because the winning write sealed at the current epoch
//! anyway.

use crate::envelope::SealedObject;
use crate::error::DataError;
use crate::metrics::DataMetricsSnapshot;
use crate::session::ClientSession;
use cloud_store::stable_hash64;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Sweeper pacing parameters.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// How long after a rotation the lazy policy tolerates stale objects;
    /// [`Sweeper::run_until_converged`] keeps ticking until convergence or
    /// this much wall-clock has elapsed.
    pub deadline: Duration,
    /// Maximum objects migrated per [`Sweeper::tick`] (bounds the burst a
    /// background sweeper injects into the store between application
    /// operations).
    pub max_per_tick: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            max_per_tick: 8,
        }
    }
}

/// Outcome of one sweep pass (or an aggregated run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Objects examined.
    pub scanned: usize,
    /// Objects found below the current epoch.
    pub stale: usize,
    /// Objects successfully re-encrypted to the current epoch.
    pub migrated: usize,
    /// Migrations lost to concurrent writers (benign; see module docs).
    pub conflicts: usize,
    /// True when no stale object remained unhandled at the end.
    pub converged: bool,
    /// The lowest epoch any scanned object still sits at after this pass
    /// (`None` if nothing was scanned). When a **full-namespace** sweep
    /// converges, no retired key below this epoch can ever be needed again
    /// — the safe `keep_from` bound for
    /// [`acs::Admin::compact_history`].
    pub min_live_epoch: Option<u64>,
    /// Wall clock consumed.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Folds another worker's report into this one (counter sums,
    /// convergence AND, epoch-floor min); elapsed is left to the caller,
    /// which knows the actual wall-clock of the merged run.
    pub(crate) fn absorb(&mut self, other: &SweepReport) {
        self.absorb_counters(other);
        self.converged = self.converged && other.converged;
    }

    /// Counter sums and epoch-floor min only, leaving `converged` alone —
    /// for accumulators whose convergence is not an AND over the parts
    /// (a multi-pass folder's final pass is the verdict, see
    /// [`crate::SweepScheduler`]).
    pub(crate) fn absorb_counters(&mut self, other: &SweepReport) {
        self.scanned += other.scanned;
        self.stale += other.stale;
        self.migrated += other.migrated;
        self.conflicts += other.conflicts;
        self.min_live_epoch = merge_floor(self.min_live_epoch, other.min_live_epoch);
    }
}

/// Min of two optional epoch floors.
fn merge_floor(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The common driving surface of a single [`Sweeper`] and a
/// [`crate::SweepPool`]; what [`crate::RevocationCoordinator`] and replay
/// backends are generic over.
pub trait SweepDriver {
    /// One unbounded synchronous sweep (the eager policy's revocation-time
    /// work).
    ///
    /// # Errors
    /// Control-plane failures; non-CAS migration failures.
    fn sweep_now(&mut self) -> Result<SweepReport, DataError>;

    /// Sweeps until no stale object remains or the configured deadline
    /// elapses (the lazy policy's convergence driver).
    ///
    /// # Errors
    /// Same contract as [`SweepDriver::sweep_now`].
    fn run_until_converged(&mut self) -> Result<SweepReport, DataError>;

    /// Blocks on the group's metadata long poll (up to `timeout`); on a
    /// change, converges and reports. `None` on a quiet poll.
    ///
    /// # Errors
    /// Same contract as [`SweepDriver::sweep_now`].
    fn watch(&mut self, timeout: Duration) -> Result<Option<SweepReport>, DataError>;

    /// Merged counters of the underlying session(s).
    fn metrics(&self) -> DataMetricsSnapshot;
}

/// The re-encryption sweeper; owns a privileged member session and an
/// optional shard assignment.
pub struct Sweeper {
    session: ClientSession,
    config: SweepConfig,
    /// This worker's index within the assignment.
    worker: usize,
    /// Total workers the namespace is divided among.
    of: usize,
}

impl Sweeper {
    /// Wraps a session (a group member provisioned for the sweeper role)
    /// with pacing `config`, owning the whole namespace.
    pub fn new(session: ClientSession, config: SweepConfig) -> Self {
        Self::with_assignment(session, config, 0, 1)
    }

    /// A pool worker: sweeps only the data folders with index
    /// `idx % of == worker`.
    ///
    /// # Panics
    /// Panics if `of` is zero or `worker >= of`.
    pub fn with_assignment(
        session: ClientSession,
        config: SweepConfig,
        worker: usize,
        of: usize,
    ) -> Self {
        assert!(of >= 1, "at least one worker is required");
        assert!(worker < of, "worker index out of range");
        Self {
            session,
            config,
            worker,
            of,
        }
    }

    /// The sweeper's pacing parameters.
    pub fn config(&self) -> SweepConfig {
        self.config
    }

    /// Counters of the underlying session (`migrations`,
    /// `migration_conflicts`, …).
    pub fn metrics(&self) -> DataMetricsSnapshot {
        self.session.metrics()
    }

    /// The underlying session (diagnostics; e.g. current epoch).
    pub fn session(&self) -> &ClientSession {
        &self.session
    }

    /// One bounded sweep pass: refresh keys if the epoch moved, scan the
    /// assigned data folders, migrate up to `max_per_tick` stale objects.
    ///
    /// # Errors
    /// Control-plane failures from the refresh; per-object migration
    /// failures other than CAS conflicts (which are counted, not fatal).
    pub fn tick(&mut self) -> Result<SweepReport, DataError> {
        let t0 = Instant::now();
        let mut pass = self.begin_pass()?;
        if self.config.max_per_tick > 0 {
            pass.step(self, self.config.max_per_tick)?;
        }
        let mut report = pass.finish();
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Scans the assigned folders **once** and returns a resumable
    /// migration pass over the stale work-list — the work-unit primitive
    /// every driver composes ([`Sweeper::tick`], [`Sweeper::sweep_now`],
    /// [`Sweeper::run_until_converged`], and the fleet-wide
    /// [`crate::SweepScheduler`], which leases [`SweepPass::step`]
    /// increments of many groups' passes to a shared worker pool).
    ///
    /// # Errors
    /// Control-plane failures from the freshness check; transient store
    /// faults (the scan GETs surface them instead of blocking on a dead
    /// store — the pool and fleet scheduler contain and retry them);
    /// storage wire-format corruption found by the scan.
    pub fn begin_pass(&mut self) -> Result<SweepPass, DataError> {
        let scan = self.scan()?;
        let stale = scan.work.len();
        let mut floor = scan.fresh_floor;
        if stale > 0 {
            // migrated items end at the current epoch; conflicted ones are
            // re-verified against their actual headers in migrate()
            floor = merge_floor(floor, Some(scan.current));
        }
        Ok(SweepPass {
            work: scan.work.into(),
            current: scan.current,
            scanned: scan.scanned,
            stale,
            migrated: 0,
            conflicts: 0,
            still_stale: 0,
            floor,
        })
    }

    /// Sweeps until no stale object remains or the configured deadline
    /// elapses. The lazy policy's convergence driver: call it (or
    /// [`Sweeper::watch`]) after a revocation. The folders are scanned
    /// **once** (one GET per object); the stale work-list is then migrated
    /// in `max_per_tick` increments, checking the deadline between
    /// increments — CAS conditions guarantee any object a concurrent
    /// writer moved in the meantime is skipped, not trampled.
    ///
    /// # Errors
    /// Same contract as [`Sweeper::tick`].
    pub fn run_until_converged(&mut self) -> Result<SweepReport, DataError> {
        self.drain(Some(self.config.deadline))
    }

    /// One unbounded synchronous sweep — the **eager** policy's revocation-
    /// time work: no deadline, runs until the work-list is drained.
    ///
    /// # Errors
    /// Same contract as [`Sweeper::tick`].
    pub fn sweep_now(&mut self) -> Result<SweepReport, DataError> {
        self.drain(None)
    }

    /// Blocks on the group's metadata long poll (up to `timeout`); on a
    /// change — e.g. a revocation rotating the key — runs
    /// [`Sweeper::run_until_converged`]. Returns `None` on a quiet poll.
    /// This is the shape a dedicated background sweeper thread loops on.
    ///
    /// # Errors
    /// Same contract as [`Sweeper::run_until_converged`].
    pub fn watch(&mut self, timeout: Duration) -> Result<Option<SweepReport>, DataError> {
        if self.session.watch(timeout)? {
            return self.run_until_converged().map(Some);
        }
        Ok(None)
    }

    /// Blocks on the metadata long poll without sweeping; `true` when the
    /// ring was rebuilt. The pool's wake primitive: one worker polls, every
    /// worker then converges in parallel.
    pub(crate) fn poll(&mut self, timeout: Duration) -> Result<bool, DataError> {
        self.session.watch(timeout)
    }

    /// Forces a control-plane sync and ring rebuild now, so the next sweep
    /// pass starts migrating immediately instead of paying the key
    /// derivation first. Arm a sweeper (or a whole [`crate::SweepPool`])
    /// with this right after a rotation.
    ///
    /// # Errors
    /// Same contract as [`ClientSession::refresh`].
    pub fn refresh(&mut self) -> Result<(), DataError> {
        self.session.refresh().map(|_| ())
    }

    /// Scan once, then migrate the whole work-list (bounded by `deadline`
    /// if given, checked every `max_per_tick` objects).
    fn drain(&mut self, deadline: Option<Duration>) -> Result<SweepReport, DataError> {
        let t0 = Instant::now();
        let mut pass = self.begin_pass()?;
        let chunk = self.config.max_per_tick.max(1);
        while !pass.is_drained() {
            pass.step(self, chunk)?;
            if let Some(limit) = deadline {
                if t0.elapsed() >= limit && !pass.is_drained() {
                    break;
                }
            }
        }
        let mut report = pass.finish();
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// One pass over the assigned folders: freshness check (cheap
    /// zero-timeout poll, full rebuild only when the epoch moved), then one
    /// GET per object, peeking the 9-byte header to collect the stale
    /// work-list. Doubles as the versions-map GC: tracked versions of
    /// in-scope objects that vanished from the store are pruned against the
    /// live set the scan just built.
    fn scan(&mut self) -> Result<Scan, DataError> {
        self.session.maybe_refresh()?;
        let current = self.session.current_epoch().ok_or(DataError::NoKeys)?;
        // ride through outage windows with backoff before giving the lease
        // up as lost — a scan makes one request per object, so unretried
        // faults would fail whole leases far too eagerly
        let retry = self.session.retry_policy();
        let mut scanned = 0usize;
        let mut work = Vec::new();
        let mut fresh_floor = None;
        let mut live = HashSet::new();
        for folder in self.assigned_folders() {
            for object in retry.run(|| Ok(self.session.store().try_list(&folder)?))? {
                scanned += 1;
                let fetched =
                    retry.run(|| Ok(self.session.store().try_get(&folder, &object)?))?;
                let Some((bytes, version)) = fetched else {
                    continue; // deleted between list and get
                };
                match SealedObject::peek_epoch(&bytes) {
                    Some(epoch) if epoch < current => {
                        live.insert(object.clone());
                        work.push(StaleObject {
                            name: object,
                            bytes: bytes.to_vec(),
                            version,
                            epoch,
                        });
                    }
                    Some(epoch) => {
                        fresh_floor = merge_floor(fresh_floor, Some(epoch));
                        live.insert(object);
                    }
                    None => return Err(DataError::WireFormat("data object header")),
                }
            }
        }
        let (shards, worker, of) = (self.session.data_shards() as u64, self.worker, self.of);
        self.session.prune_versions(&live, |name| {
            (stable_hash64(name) % shards) as usize % of == worker
        });
        Ok(Scan {
            scanned,
            work,
            fresh_floor,
            current,
        })
    }

    /// The data folders this worker owns, in shard order.
    fn assigned_folders(&self) -> Vec<String> {
        self.session
            .data_folders()
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % self.of == self.worker)
            .map(|(_, f)| f.clone())
            .collect()
    }

    /// Migrates one work item, folding the outcome into `pass`; CAS
    /// conflicts are counted, not fatal. Re-using the scanned bytes is
    /// safe: a successful CAS proves the object's version (and therefore
    /// its bytes) did not change since the scan.
    ///
    /// A conflict normally means the winning writer already re-sealed the
    /// object at the current epoch — but a writer whose ring raced the
    /// rotation's publish can win with a *stale*-epoch seal, so each
    /// conflicted object's actual header is re-fetched and its real epoch
    /// folded into the pass's floor. Claiming the current epoch blindly
    /// would let a converged report authorize a history compaction that
    /// orphans that object forever.
    fn migrate_one(
        &mut self,
        item: &StaleObject,
        current: u64,
        pass: &mut MigratePass,
    ) -> Result<(), DataError> {
        let sealed = SealedObject::from_bytes(&item.bytes)?;
        match self.session.migrate(&item.name, &sealed, item.version) {
            Ok(()) => pass.migrated += 1,
            Err(DataError::Conflict(_)) => {
                pass.conflicts += 1;
                let folder = self.session.folder_of(&item.name).to_string();
                let retry = self.session.retry_policy();
                let refetched =
                    retry.run(|| Ok(self.session.store().try_get(&folder, &item.name)?))?;
                if let Some((bytes, _)) = refetched {
                    let epoch = SealedObject::peek_epoch(&bytes)
                        .ok_or(DataError::WireFormat("data object header"))?;
                    pass.conflict_floor = merge_floor(pass.conflict_floor, Some(epoch));
                    if epoch < current {
                        pass.still_stale += 1;
                    }
                }
                // a vanished object was deleted by the winner: handled
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }
}

impl SweepDriver for Sweeper {
    fn sweep_now(&mut self) -> Result<SweepReport, DataError> {
        Sweeper::sweep_now(self)
    }

    fn run_until_converged(&mut self) -> Result<SweepReport, DataError> {
        Sweeper::run_until_converged(self)
    }

    fn watch(&mut self, timeout: Duration) -> Result<Option<SweepReport>, DataError> {
        Sweeper::watch(self, timeout)
    }

    fn metrics(&self) -> DataMetricsSnapshot {
        Sweeper::metrics(self)
    }
}

/// A resumable migration pass over one scan's stale work-list: the
/// schedulable work unit of the sweep machinery.
///
/// Produced by [`Sweeper::begin_pass`] (which pays the scan — one GET per
/// in-scope object — exactly once); consumed by bounded
/// [`SweepPass::step`] calls until drained, then folded into a
/// [`SweepReport`] by [`SweepPass::finish`]. Single-group drivers step a
/// pass to completion back-to-back; the fleet [`crate::SweepScheduler`]
/// interleaves steps of many groups' passes across a shared worker pool,
/// which is why the pass owns its work-list instead of borrowing the
/// sweeper.
#[derive(Debug)]
pub struct SweepPass {
    work: std::collections::VecDeque<StaleObject>,
    /// The ring's current epoch at scan time.
    current: u64,
    scanned: usize,
    stale: usize,
    migrated: usize,
    conflicts: usize,
    still_stale: usize,
    floor: Option<u64>,
}

impl SweepPass {
    /// Stale objects not yet handed to [`SweepPass::step`].
    pub fn remaining(&self) -> usize {
        self.work.len()
    }

    /// True when the whole work-list has been migrated (or conflicted
    /// away); [`SweepPass::finish`] will then report convergence unless a
    /// conflicted object turned out to still be stale.
    pub fn is_drained(&self) -> bool {
        self.work.is_empty()
    }

    /// Migrates up to `budget` (at least 1) stale objects through
    /// `sweeper`'s session; CAS conflicts are counted, not fatal. Returns
    /// the number of work items consumed.
    ///
    /// # Errors
    /// Non-CAS migration failures. The failed item goes back to the front
    /// of the work-list, so the pass can be re-stepped (retrying it) or
    /// [`SweepPass::finish`]ed (counting it — and everything behind it —
    /// as unhandled: unconverged, epochs kept in the floor).
    pub fn step(&mut self, sweeper: &mut Sweeper, budget: usize) -> Result<usize, DataError> {
        let mut consumed = 0;
        for _ in 0..budget.max(1) {
            let Some(item) = self.work.pop_front() else {
                break;
            };
            // fold item by item, not once per chunk: a worker that fails —
            // or panics — partway through a step must not lose the counters
            // of the items it already handled (the fleet scheduler salvages
            // this pass's counters when it re-queues the unit)
            let mut outcome = MigratePass::default();
            let result = sweeper.migrate_one(&item, self.current, &mut outcome);
            self.migrated += outcome.migrated;
            self.conflicts += outcome.conflicts;
            self.still_stale += outcome.still_stale;
            self.floor = merge_floor(self.floor, outcome.conflict_floor);
            if let Err(e) = result {
                self.work.push_front(item);
                return Err(e);
            }
            consumed += 1;
        }
        Ok(consumed)
    }

    /// Closes the pass into a [`SweepReport`]: any work items never
    /// stepped count against convergence and fold their epochs into the
    /// floor (exactly like a deadline-cut [`Sweeper::run_until_converged`]
    /// does). `elapsed` is left zero — only the driver knows the true wall
    /// clock around its steps.
    pub fn finish(self) -> SweepReport {
        let unhandled = self.work.len();
        let mut floor = self.floor;
        for skipped in &self.work {
            floor = merge_floor(floor, Some(skipped.epoch));
        }
        SweepReport {
            scanned: self.scanned,
            stale: self.stale,
            migrated: self.migrated,
            conflicts: self.conflicts,
            // conflicted objects usually were re-sealed by their winning
            // writer at the current epoch (verified against their actual
            // headers); only never-stepped and verified-still-stale ones
            // are genuinely unhandled
            converged: unhandled == 0 && self.still_stale == 0,
            min_live_epoch: floor,
            elapsed: Duration::ZERO,
        }
    }
}

/// Result of one migration pass over a chunk of stale objects.
#[derive(Default)]
struct MigratePass {
    migrated: usize,
    conflicts: usize,
    /// Lowest epoch observed on conflicted objects' re-fetched headers.
    conflict_floor: Option<u64>,
    /// Conflicted objects whose winning write is itself below the current
    /// epoch (a writer that raced the rotation's publish): the sweep has
    /// NOT converged and another pass must pick them up.
    still_stale: usize,
}

/// Result of one scan pass.
struct Scan {
    scanned: usize,
    work: Vec<StaleObject>,
    /// Lowest epoch among the up-to-date objects seen.
    fresh_floor: Option<u64>,
    /// The ring's current epoch at scan time.
    current: u64,
}

/// One stale object captured by a scan: name, raw stored bytes, the
/// version the migration CAS is conditioned on, and the epoch it sits at.
#[derive(Debug)]
struct StaleObject {
    name: String,
    bytes: Vec<u8>,
    version: u64,
    epoch: u64,
}

impl core::fmt::Debug for Sweeper {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Sweeper({:?}, worker {}/{}, deadline {:?}, ≤{} per tick)",
            self.session, self.worker, self.of, self.config.deadline, self.config.max_per_tick
        )
    }
}
