//! The background re-encryption sweeper: closes the lazy window.
//!
//! After a revocation rotates the group key, objects sealed at retired
//! epochs remain readable to the revoked member *if* they kept their old
//! keys. The lazy policy accepts that window in exchange for an O(1)
//! revocation and bounds it with this sweeper: a privileged member session
//! (the sweeper holds an ordinary USK — SGX is not involved on this side)
//! scans the data folder, re-encrypts every stale object to the current
//! epoch, and is expected to converge within a configured deadline. The
//! eager policy is the degenerate case: one unbounded sweep, synchronously
//! at revocation time.
//!
//! Migrations are CAS writes conditioned on the scanned version, so the
//! sweeper never tramples a concurrent application write — and losing that
//! race is free, because the winning write sealed at the current epoch
//! anyway.

use crate::envelope::SealedObject;
use crate::error::DataError;
use crate::metrics::DataMetricsSnapshot;
use crate::session::ClientSession;
use std::time::{Duration, Instant};

/// Sweeper pacing parameters.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// How long after a rotation the lazy policy tolerates stale objects;
    /// [`Sweeper::run_until_converged`] keeps ticking until convergence or
    /// this much wall-clock has elapsed.
    pub deadline: Duration,
    /// Maximum objects migrated per [`Sweeper::tick`] (bounds the burst a
    /// background sweeper injects into the store between application
    /// operations).
    pub max_per_tick: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            max_per_tick: 8,
        }
    }
}

/// Outcome of one sweep pass (or an aggregated run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Objects examined.
    pub scanned: usize,
    /// Objects found below the current epoch.
    pub stale: usize,
    /// Objects successfully re-encrypted to the current epoch.
    pub migrated: usize,
    /// Migrations lost to concurrent writers (benign; see module docs).
    pub conflicts: usize,
    /// True when no stale object remained unhandled at the end.
    pub converged: bool,
    /// Wall clock consumed.
    pub elapsed: Duration,
}

/// The re-encryption sweeper; owns a privileged member session.
pub struct Sweeper {
    session: ClientSession,
    config: SweepConfig,
}

impl Sweeper {
    /// Wraps a session (a group member provisioned for the sweeper role)
    /// with pacing `config`.
    pub fn new(session: ClientSession, config: SweepConfig) -> Self {
        Self { session, config }
    }

    /// The sweeper's pacing parameters.
    pub fn config(&self) -> SweepConfig {
        self.config
    }

    /// Counters of the underlying session (`migrations`,
    /// `migration_conflicts`, …).
    pub fn metrics(&self) -> DataMetricsSnapshot {
        self.session.metrics()
    }

    /// The underlying session (diagnostics; e.g. current epoch).
    pub fn session(&self) -> &ClientSession {
        &self.session
    }

    /// One bounded sweep pass: refresh keys if the epoch moved, scan the
    /// data folder, migrate up to `max_per_tick` stale objects.
    ///
    /// # Errors
    /// Control-plane failures from the refresh; per-object migration
    /// failures other than CAS conflicts (which are counted, not fatal).
    pub fn tick(&mut self) -> Result<SweepReport, DataError> {
        let t0 = Instant::now();
        let (scanned, work) = self.scan()?;
        let stale = work.len();
        let budget = self.config.max_per_tick.min(stale);
        let mut report = self.migrate(work.into_iter().take(budget))?;
        report.scanned = scanned;
        report.stale = stale;
        // conflicted objects were re-sealed by their winning writer at the
        // current epoch; only budget-skipped ones are genuinely unhandled
        report.converged = report.migrated + report.conflicts == stale;
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Sweeps until no stale object remains or the configured deadline
    /// elapses. The lazy policy's convergence driver: call it (or
    /// [`Sweeper::watch`]) after a revocation. The folder is scanned
    /// **once** (one GET per object); the stale work-list is then migrated
    /// in `max_per_tick` increments, checking the deadline between
    /// increments — CAS conditions guarantee any object a concurrent
    /// writer moved in the meantime is skipped, not trampled.
    ///
    /// # Errors
    /// Same contract as [`Sweeper::tick`].
    pub fn run_until_converged(&mut self) -> Result<SweepReport, DataError> {
        self.drain(Some(self.config.deadline))
    }

    /// One unbounded synchronous sweep — the **eager** policy's revocation-
    /// time work: no deadline, runs until the work-list is drained.
    ///
    /// # Errors
    /// Same contract as [`Sweeper::tick`].
    pub fn sweep_now(&mut self) -> Result<SweepReport, DataError> {
        self.drain(None)
    }

    /// Blocks on the group's metadata long poll (up to `timeout`); on a
    /// change — e.g. a revocation rotating the key — runs
    /// [`Sweeper::run_until_converged`]. Returns `None` on a quiet poll.
    /// This is the shape a dedicated background sweeper thread loops on.
    ///
    /// # Errors
    /// Same contract as [`Sweeper::run_until_converged`].
    pub fn watch(&mut self, timeout: Duration) -> Result<Option<SweepReport>, DataError> {
        if self.session.watch(timeout)? {
            return self.run_until_converged().map(Some);
        }
        Ok(None)
    }

    /// Scan once, then migrate the whole work-list (bounded by `deadline`
    /// if given, checked every `max_per_tick` objects).
    fn drain(&mut self, deadline: Option<Duration>) -> Result<SweepReport, DataError> {
        let t0 = Instant::now();
        let (scanned, work) = self.scan()?;
        let stale = work.len();
        let mut report = SweepReport {
            scanned,
            stale,
            ..SweepReport::default()
        };
        let chunk = self.config.max_per_tick.max(1);
        let mut work = work.into_iter();
        loop {
            let batch: Vec<StaleObject> = work.by_ref().take(chunk).collect();
            if batch.is_empty() {
                report.converged = true;
                break;
            }
            let pass = self.migrate(batch.into_iter())?;
            report.migrated += pass.migrated;
            report.conflicts += pass.conflicts;
            if let Some(limit) = deadline {
                if t0.elapsed() >= limit && work.len() > 0 {
                    report.converged = false;
                    break;
                }
            }
        }
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// One pass over the folder: freshness check (cheap zero-timeout poll,
    /// full rebuild only when the epoch moved), then one GET per object,
    /// peeking the 9-byte header to collect the stale work-list.
    fn scan(&mut self) -> Result<(usize, Vec<StaleObject>), DataError> {
        self.session.maybe_refresh()?;
        let current = self.session.current_epoch().ok_or(DataError::NoKeys)?;
        let mut scanned = 0usize;
        let mut work = Vec::new();
        for object in self.session.list_objects() {
            scanned += 1;
            let fetched = self.session.store().get(self.session.folder(), &object);
            let Some((bytes, version)) = fetched else {
                continue; // deleted between list and get
            };
            match SealedObject::peek_epoch(&bytes) {
                Some(epoch) if epoch < current => work.push(StaleObject {
                    name: object,
                    bytes: bytes.to_vec(),
                    version,
                }),
                Some(_) => {}
                None => return Err(DataError::WireFormat("data object header")),
            }
        }
        Ok((scanned, work))
    }

    /// Migrates the given work items; CAS conflicts are counted, not fatal.
    /// Re-using the scanned bytes is safe: a successful CAS proves the
    /// object's version (and therefore its bytes) did not change since the
    /// scan.
    fn migrate(
        &mut self,
        items: impl Iterator<Item = StaleObject>,
    ) -> Result<SweepReport, DataError> {
        let mut report = SweepReport::default();
        for item in items {
            let sealed = SealedObject::from_bytes(&item.bytes)?;
            match self.session.migrate(&item.name, &sealed, item.version) {
                Ok(()) => report.migrated += 1,
                Err(DataError::Conflict(_)) => report.conflicts += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }
}

/// One stale object captured by a scan: name, raw stored bytes, and the
/// version the migration CAS is conditioned on.
struct StaleObject {
    name: String,
    bytes: Vec<u8>,
    version: u64,
}

impl core::fmt::Debug for Sweeper {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Sweeper({:?}, deadline {:?}, ≤{} per tick)",
            self.session, self.config.deadline, self.config.max_per_tick
        )
    }
}
