//! Data-plane session builders over [`acs::FleetFixture`] — the
//! test/bench counterpart of the control-plane fixture.
//!
//! `acs`'s fixture stops at user keys (it cannot know about sessions a
//! crate above it); these helpers finish the job so multi-group suites and
//! the `fleet_sweep` bench build their writers, readers and per-shard
//! sweeper sessions in one call each instead of re-spelling the
//! usk/pk/store/shards glue.

use crate::session::ClientSession;
use acs::FleetFixture;

/// A deterministic session for `identity` on one of the fixture's groups,
/// spread over `shards` data folders.
///
/// # Panics
/// Panics if the fixture cannot extract `identity`'s key.
pub fn fleet_session(
    fixture: &FleetFixture,
    identity: &str,
    group: &str,
    shards: usize,
    seed: u64,
) -> ClientSession {
    ClientSession::with_seed(
        identity,
        fixture.usk(identity).expect("fixture extracts the usk"),
        fixture.public_key(),
        fixture.admin().store().clone(),
        group,
        seed,
    )
    .with_data_shards(shards)
}

/// One sweeper session per data folder (the shape [`crate::SweepTask`]
/// and [`crate::SweepPool`] take), deterministically seeded per worker.
///
/// # Panics
/// Panics if the fixture cannot extract `identity`'s key.
pub fn fleet_sweep_sessions(
    fixture: &FleetFixture,
    identity: &str,
    group: &str,
    shards: usize,
    seed: u64,
) -> Vec<ClientSession> {
    (0..shards)
        .map(|w| fleet_session(fixture, identity, group, shards, seed ^ ((w as u64) << 32)))
        .collect()
}
