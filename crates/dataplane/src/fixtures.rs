//! Data-plane session builders over [`acs::FleetFixture`] — the
//! test/bench counterpart of the control-plane fixture.
//!
//! `acs`'s fixture stops at user keys (it cannot know about sessions a
//! crate above it); these helpers finish the job so multi-group suites and
//! the `fleet_sweep` bench build their writers, readers and per-shard
//! sweeper sessions in one call each instead of re-spelling the
//! usk/pk/store/shards glue.

use crate::session::ClientSession;
use acs::FleetFixture;
use cloud_store::StoreHandle;

/// A deterministic session for `identity` on one of the fixture's groups,
/// spread over `shards` data folders.
///
/// # Panics
/// Panics if the fixture cannot extract `identity`'s key.
pub fn fleet_session(
    fixture: &FleetFixture,
    identity: &str,
    group: &str,
    shards: usize,
    seed: u64,
) -> ClientSession {
    ClientSession::with_seed(
        identity,
        fixture.usk(identity).expect("fixture extracts the usk"),
        fixture.public_key(),
        fixture.admin().store().clone(),
        group,
        seed,
    )
    .with_data_shards(shards)
}

/// One sweeper session per data folder (the shape [`crate::SweepTask`]
/// and [`crate::SweepPool`] take), deterministically seeded per worker.
///
/// # Panics
/// Panics if the fixture cannot extract `identity`'s key.
pub fn fleet_sweep_sessions(
    fixture: &FleetFixture,
    identity: &str,
    group: &str,
    shards: usize,
    seed: u64,
) -> Vec<ClientSession> {
    (0..shards)
        .map(|w| fleet_session(fixture, identity, group, shards, seed ^ ((w as u64) << 32)))
        .collect()
}

/// [`fleet_session`] over an explicit store handle instead of the
/// fixture's own — the shape fault suites need: keys still come from the
/// fixture, but the session's requests route through (say) a
/// [`cloud_store::FaultyStore`] wrapper while the admin keeps a clean
/// handle.
///
/// # Panics
/// Panics if the fixture cannot extract `identity`'s key.
pub fn fleet_session_on(
    fixture: &FleetFixture,
    store: StoreHandle,
    identity: &str,
    group: &str,
    shards: usize,
    seed: u64,
) -> ClientSession {
    ClientSession::with_seed(
        identity,
        fixture.usk(identity).expect("fixture extracts the usk"),
        fixture.public_key(),
        store,
        group,
        seed,
    )
    .with_data_shards(shards)
}

/// [`fleet_sweep_sessions`] over an explicit store handle — one faultable
/// sweeper session per data folder.
///
/// # Panics
/// Panics if the fixture cannot extract `identity`'s key.
pub fn fleet_sweep_sessions_on(
    fixture: &FleetFixture,
    store: StoreHandle,
    identity: &str,
    group: &str,
    shards: usize,
    seed: u64,
) -> Vec<ClientSession> {
    (0..shards)
        .map(|w| {
            fleet_session_on(
                fixture,
                store.clone(),
                identity,
                group,
                shards,
                seed ^ ((w as u64) << 32),
            )
        })
        .collect()
}
