//! Envelope encryption of data objects.
//!
//! Every object is encrypted under its own random **DEK** (AES-256-GCM);
//! the DEK is wrapped under a **KEK derived from the group key of one
//! specific epoch**. Rotating the group key therefore costs nothing per
//! object — only new writes (and sweeper migrations) move objects to the
//! new epoch, which is the whole lazy-re-encryption trade-off.
//!
//! Both GCM layers authenticate `object name ‖ epoch` as AAD, so an object
//! cannot be renamed, cross-planted, or re-labelled to a different epoch by
//! the (honest-but-curious or tampering) cloud without detection.

use crate::error::DataError;
use ibbe_sgx_core::{GroupKey, KeyRing};
use symcrypto::gcm::{AesGcm, NONCE_LEN, TAG_LEN};
use symcrypto::sha256::Sha256;

/// Wire-format version byte of [`SealedObject`].
pub const OBJECT_FORMAT_V1: u8 = 1;

/// Size of a wrapped DEK: 32 key bytes + GCM tag.
const WRAPPED_DEK_LEN: usize = 32 + TAG_LEN;

/// Derives the epoch KEK from a group key (domain-separated so data-plane
/// wraps can never collide with other `gk`-derived material).
fn kek_for(gk: &GroupKey) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(gk.as_bytes());
    h.update(b"ibbe-sgx-dataplane-kek-v1");
    h.finalize()
}

/// AAD binding an object ciphertext to its name and epoch.
fn object_aad(object: &str, epoch: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(object.len() + 8);
    aad.extend_from_slice(object.as_bytes());
    aad.extend_from_slice(&epoch.to_be_bytes());
    aad
}

/// An envelope-encrypted data object as stored on the cloud.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SealedObject {
    /// Key epoch whose KEK wraps this object's DEK.
    pub epoch: u64,
    dek_nonce: [u8; NONCE_LEN],
    wrapped_dek: Vec<u8>,
    nonce: [u8; NONCE_LEN],
    ciphertext: Vec<u8>,
}

impl SealedObject {
    /// Encrypts `plaintext` as `object` at the ring's **current** epoch:
    /// fresh DEK, DEK wrapped under the current epoch's KEK.
    pub fn seal<R: rand::RngCore + ?Sized>(
        ring: &KeyRing,
        object: &str,
        plaintext: &[u8],
        rng: &mut R,
    ) -> Self {
        let (epoch, gk) = ring.current();
        let aad = object_aad(object, epoch);
        let mut dek = [0u8; 32];
        rng.fill_bytes(&mut dek);
        let mut dek_nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut dek_nonce);
        let wrapped_dek = AesGcm::new(&kek_for(gk)).seal(&dek_nonce, &aad, &dek);
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        let ciphertext = AesGcm::new(&dek).seal(&nonce, &aad, plaintext);
        Self {
            epoch,
            dek_nonce,
            wrapped_dek,
            nonce,
            ciphertext,
        }
    }

    /// Decrypts the object with whichever epoch key the ring holds for it.
    ///
    /// # Errors
    /// * [`DataError::UnknownEpoch`] if the ring has no key for the
    ///   object's epoch (the revoked-reader lockout path);
    /// * [`DataError::AuthFailed`] if either GCM layer rejects (tampering,
    ///   renamed object, forged epoch label).
    pub fn open(&self, ring: &KeyRing, object: &str) -> Result<Vec<u8>, DataError> {
        let gk = ring
            .key_for(self.epoch)
            .ok_or(DataError::UnknownEpoch(self.epoch))?;
        let aad = object_aad(object, self.epoch);
        let dek = AesGcm::new(&kek_for(gk))
            .open(&self.dek_nonce, &aad, &self.wrapped_dek)
            .map_err(|_| DataError::AuthFailed)?;
        let dek: [u8; 32] = dek.try_into().map_err(|_| DataError::AuthFailed)?;
        AesGcm::new(&dek)
            .open(&self.nonce, &aad, &self.ciphertext)
            .map_err(|_| DataError::AuthFailed)
    }

    /// Re-encrypts to the ring's current epoch: decrypts with the old epoch
    /// key, then seals again with a **fresh DEK** (re-wrapping alone would
    /// leave the payload under a DEK the departed epoch's readers may have
    /// cached). This is the unit of work the sweeper performs per object.
    ///
    /// # Errors
    /// Same contract as [`SealedObject::open`].
    pub fn reencrypt<R: rand::RngCore + ?Sized>(
        &self,
        ring: &KeyRing,
        object: &str,
        rng: &mut R,
    ) -> Result<Self, DataError> {
        let plaintext = self.open(ring, object)?;
        Ok(Self::seal(ring, object, &plaintext, rng))
    }

    /// Payload ciphertext length in bytes (plaintext length + tag).
    pub fn payload_len(&self) -> usize {
        self.ciphertext.len()
    }

    /// Serializes to
    /// `version:u8 ‖ epoch:u64 ‖ dek_nonce ‖ wrapped_dek ‖ nonce ‖ ct`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(1 + 8 + 2 * NONCE_LEN + WRAPPED_DEK_LEN + self.ciphertext.len());
        out.push(OBJECT_FORMAT_V1);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.dek_nonce);
        out.extend_from_slice(&self.wrapped_dek);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a stored object.
    ///
    /// # Errors
    /// [`DataError::WireFormat`] on bad version or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DataError> {
        const HEADER: usize = 1 + 8 + NONCE_LEN + WRAPPED_DEK_LEN + NONCE_LEN;
        if bytes.len() < HEADER {
            return Err(DataError::WireFormat("object too short"));
        }
        if bytes[0] != OBJECT_FORMAT_V1 {
            return Err(DataError::WireFormat("unknown object format version"));
        }
        let epoch = u64::from_be_bytes(bytes[1..9].try_into().expect("sliced 8"));
        let mut cur = 9;
        let mut dek_nonce = [0u8; NONCE_LEN];
        dek_nonce.copy_from_slice(&bytes[cur..cur + NONCE_LEN]);
        cur += NONCE_LEN;
        let wrapped_dek = bytes[cur..cur + WRAPPED_DEK_LEN].to_vec();
        cur += WRAPPED_DEK_LEN;
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&bytes[cur..cur + NONCE_LEN]);
        cur += NONCE_LEN;
        // the payload tag is part of the ciphertext; an empty plaintext
        // still carries TAG_LEN bytes
        if bytes.len() - cur < TAG_LEN {
            return Err(DataError::WireFormat("object payload too short"));
        }
        Ok(Self {
            epoch,
            dek_nonce,
            wrapped_dek,
            nonce,
            ciphertext: bytes[cur..].to_vec(),
        })
    }

    /// Reads just the epoch from a stored object's bytes — what the sweeper
    /// uses to spot stale objects without unwrapping anything.
    pub fn peek_epoch(bytes: &[u8]) -> Option<u64> {
        if bytes.len() < 9 || bytes[0] != OBJECT_FORMAT_V1 {
            return None;
        }
        Some(u64::from_be_bytes(bytes[1..9].try_into().ok()?))
    }
}
