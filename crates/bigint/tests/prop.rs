//! Property-based tests for `ibbe-bigint` against `u128` reference
//! arithmetic and algebraic laws.

use ibbe_bigint::{MontParams, Uint};
use proptest::prelude::*;

const P1_M: u64 = 0xffffffffffffffc5; // 2^64 - 59, prime
const P1: MontParams<1> = MontParams::new(Uint::new([P1_M]));

// 2^128 - 159, prime
const P2: MontParams<2> = MontParams::new(Uint::new([0xffffffffffffff61, u64::MAX]));

fn u1(v: u64) -> Uint<1> {
    Uint::from_u64(v)
}

prop_compose! {
    fn arb_mod_p1()(v in 0..P1_M) -> u64 { v }
}

proptest! {
    #[test]
    fn mul_matches_u128(a in arb_mod_p1(), b in arb_mod_p1()) {
        let am = P1.to_mont(&u1(a));
        let bm = P1.to_mont(&u1(b));
        let got = P1.from_mont(&P1.mul(&am, &bm));
        let want = ((a as u128 * b as u128) % P1_M as u128) as u64;
        prop_assert_eq!(got, u1(want));
    }

    #[test]
    fn add_matches_u128(a in arb_mod_p1(), b in arb_mod_p1()) {
        let got = P1.add(&u1(a), &u1(b));
        let want = ((a as u128 + b as u128) % P1_M as u128) as u64;
        prop_assert_eq!(got, u1(want));
    }

    #[test]
    fn sub_then_add_roundtrip(a in arb_mod_p1(), b in arb_mod_p1()) {
        let d = P1.sub(&u1(a), &u1(b));
        prop_assert_eq!(P1.add(&d, &u1(b)), u1(a));
    }

    #[test]
    fn mul_is_commutative_2limb(a0: u64, a1: u64, b0: u64, b1: u64) {
        let a = P2.to_mont(&P2.reduce_wide(&Uint::new([a0, a1]), &Uint::ZERO));
        let b = P2.to_mont(&P2.reduce_wide(&Uint::new([b0, b1]), &Uint::ZERO));
        prop_assert_eq!(P2.mul(&a, &b), P2.mul(&b, &a));
    }

    #[test]
    fn mul_distributes_over_add_2limb(a0: u64, a1: u64, b0: u64, b1: u64, c0: u64, c1: u64) {
        let red = |x0, x1| P2.to_mont(&P2.reduce_wide(&Uint::new([x0, x1]), &Uint::ZERO));
        let (a, b, c) = (red(a0, a1), red(b0, b1), red(c0, c1));
        let lhs = P2.mul(&a, &P2.add(&b, &c));
        let rhs = P2.add(&P2.mul(&a, &b), &P2.mul(&a, &c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn inverse_is_inverse_2limb(a0: u64, a1: u64) {
        let a = P2.to_mont(&P2.reduce_wide(&Uint::new([a0, a1]), &Uint::ZERO));
        if !a.is_zero() {
            let ai = P2.inverse(&a).unwrap();
            prop_assert_eq!(P2.from_mont(&P2.mul(&a, &ai)), Uint::<2>::ONE);
        }
    }

    #[test]
    fn pow_adds_exponents(a in arb_mod_p1(), e1 in 0u64..1000, e2 in 0u64..1000) {
        let am = P1.to_mont(&u1(a));
        let lhs = P1.pow(&am, &Uint::<1>::from_u64(e1 + e2));
        let rhs = P1.mul(&P1.pow(&am, &u1(e1)), &P1.pow(&am, &u1(e2)));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn be_bytes_roundtrip_2limb(a0: u64, a1: u64) {
        let a = Uint::<2>::new([a0, a1]);
        let mut buf = [0u8; 16];
        a.write_be_bytes(&mut buf);
        prop_assert_eq!(Uint::<2>::from_be_bytes(&buf), a);
    }

    #[test]
    fn mul_wide_matches_u128(a: u64, b: u64) {
        let (lo, hi) = Uint::<1>::new([a]).mul_wide(&Uint::new([b]));
        let want = a as u128 * b as u128;
        prop_assert_eq!(lo.limbs()[0], want as u64);
        prop_assert_eq!(hi.limbs()[0], (want >> 64) as u64);
    }

    #[test]
    fn reduce_be_bytes_matches_mod(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // reference: fold bytes into u128 mod P1_M
        let mut acc: u128 = 0;
        for &b in &bytes {
            acc = ((acc << 8) | b as u128) % P1_M as u128;
        }
        prop_assert_eq!(P1.reduce_be_bytes(&bytes), u1(acc as u64));
    }
}
