//! # ibbe-bigint — fixed-width multiprecision arithmetic
//!
//! A small, dependency-free multiprecision integer substrate used by the
//! `ibbe-pairing` crate. It plays the role GMP plays under PBC in the
//! original IBBE-SGX implementation: all prime-field arithmetic of the
//! pairing curve bottoms out here.
//!
//! The central type is [`Uint`], a little-endian array of `N` 64-bit limbs,
//! together with [`MontParams`], the precomputed constants for Montgomery
//! multiplication modulo an odd prime.
//!
//! Design constraints:
//!
//! * **No heap allocation** anywhere on the arithmetic hot path.
//! * **`const`-evaluable parameters**: Montgomery constants (`R mod m`,
//!   `R² mod m`, `-m⁻¹ mod 2⁶⁴`) are derived at compile time from the modulus
//!   alone, so curve crates simply write
//!   `const FP: MontParams<6> = MontParams::new(MODULUS);`.
//! * **Branch-poor**: reductions use conditional subtraction; comparisons on
//!   secrets go through [`Uint::ct_eq`].
//!
//! ## Example
//!
//! ```
//! use ibbe_bigint::{Uint, MontParams};
//!
//! // Arithmetic modulo the 64-bit prime 2^64 - 59 (one limb for brevity).
//! const M: MontParams<1> = MontParams::new(Uint::new([0xffffffffffffffc5]));
//! let a = M.to_mont(&Uint::new([3]));
//! let b = M.to_mont(&Uint::new([5]));
//! let ab = M.mul(&a, &b);
//! assert_eq!(M.from_mont(&ab), Uint::new([15]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mont;
pub mod uint;

pub use mont::MontParams;
pub use uint::Uint;

/// Maximum number of limbs supported by scratch buffers on the Montgomery
/// multiplication path. `Fp` of BLS12-381 needs 6, `Fr` needs 4.
pub const MAX_LIMBS: usize = 8;
