//! Montgomery-form modular arithmetic over a fixed odd modulus.
//!
//! [`MontParams`] bundles a modulus with its derived Montgomery constants.
//! All constants are computed by `const fn` from the modulus alone, so field
//! definitions in downstream crates are single-line `const` items and there
//! is no runtime initialization to synchronize.

use crate::uint::{adc, mac, Uint};
use crate::MAX_LIMBS;

/// Precomputed parameters for Montgomery arithmetic modulo an odd `m`.
///
/// `R = 2^(64N)`. Values in *Montgomery form* are `x·R mod m`; conversions
/// are [`MontParams::to_mont`] / [`MontParams::from_mont`].
///
/// # Example
///
/// ```
/// use ibbe_bigint::{MontParams, Uint};
/// const M: MontParams<1> = MontParams::new(Uint::new([101]));
/// let x = M.to_mont(&Uint::from_u64(77));
/// assert_eq!(M.from_mont(&M.square(&x)), Uint::from_u64(77 * 77 % 101));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontParams<const N: usize> {
    modulus: Uint<N>,
    /// `R mod m`, i.e. the Montgomery form of 1.
    r: Uint<N>,
    /// `R² mod m`, used by [`MontParams::to_mont`].
    r2: Uint<N>,
    /// `-m⁻¹ mod 2⁶⁴`.
    inv: u64,
}

impl<const N: usize> MontParams<N> {
    /// Derives all Montgomery constants for the odd modulus `m`.
    ///
    /// # Panics
    /// Panics (at compile time when used in `const` context) if `m` is even,
    /// zero, or wider than [`MAX_LIMBS`].
    pub const fn new(modulus: Uint<N>) -> Self {
        assert!(N <= MAX_LIMBS, "modulus too wide");
        assert!(modulus.is_odd(), "Montgomery modulus must be odd");

        // inv = -m^{-1} mod 2^64 via Newton iteration on the low limb.
        let m0 = modulus.limbs()[0];
        let mut inv = 1u64;
        let mut i = 0;
        while i < 6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
            i += 1;
        }
        let inv = inv.wrapping_neg();

        // R mod m: start from 1 and double 64*N times, reducing each step.
        let mut r = Uint::<N>::ONE;
        let mut i = 0;
        while i < 64 * N {
            r = Self::double_mod(&r, &modulus);
            i += 1;
        }
        // R² mod m: double another 64*N times.
        let mut r2 = r;
        let mut i = 0;
        while i < 64 * N {
            r2 = Self::double_mod(&r2, &modulus);
            i += 1;
        }

        Self {
            modulus,
            r,
            r2,
            inv,
        }
    }

    const fn double_mod(x: &Uint<N>, m: &Uint<N>) -> Uint<N> {
        let (d, carry) = x.double_carry();
        let (sub, borrow) = d.sub_borrow(m);
        // If doubling overflowed 2^(64N) or d >= m, the reduced value is d - m.
        if carry != 0 || borrow == 0 {
            sub
        } else {
            d
        }
    }

    /// The modulus `m`.
    #[inline]
    pub const fn modulus(&self) -> Uint<N> {
        self.modulus
    }

    /// Montgomery form of 1 (`R mod m`).
    #[inline]
    pub const fn one(&self) -> Uint<N> {
        self.r
    }

    /// `R² mod m`.
    #[inline]
    pub const fn r2(&self) -> Uint<N> {
        self.r2
    }

    /// `-m⁻¹ mod 2⁶⁴`.
    #[inline]
    pub const fn inv(&self) -> u64 {
        self.inv
    }

    /// Converts a canonical integer `x < m` into Montgomery form.
    #[inline]
    pub const fn to_mont(&self, x: &Uint<N>) -> Uint<N> {
        self.mul(x, &self.r2)
    }

    /// Converts from Montgomery form back to a canonical integer.
    #[inline]
    pub const fn from_mont(&self, x: &Uint<N>) -> Uint<N> {
        self.mul(x, &Uint::ONE)
    }

    /// Montgomery multiplication (CIOS): returns `a·b·R⁻¹ mod m`.
    pub const fn mul(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let al = a.limbs();
        let bl = b.limbs();
        let ml = self.modulus.limbs();
        // Scratch has two extra limbs beyond N.
        let mut t = [0u64; MAX_LIMBS + 2];

        let mut i = 0;
        while i < N {
            // t += a[i] * b
            let mut carry = 0u64;
            let mut j = 0;
            while j < N {
                let (s, c) = mac(t[j], al[i], bl[j], carry);
                t[j] = s;
                carry = c;
                j += 1;
            }
            let (s, c) = adc(t[N], carry, 0);
            t[N] = s;
            t[N + 1] = c;

            // u = t[0] * (-m^{-1}) mod 2^64; t += u*m; t >>= 64
            let u = t[0].wrapping_mul(self.inv);
            let (_, mut carry) = mac(t[0], u, ml[0], 0);
            let mut j = 1;
            while j < N {
                let (s, c) = mac(t[j], u, ml[j], carry);
                t[j - 1] = s;
                carry = c;
                j += 1;
            }
            let (s, c) = adc(t[N], carry, 0);
            t[N - 1] = s;
            t[N] = t[N + 1] + c;
            t[N + 1] = 0;
            i += 1;
        }

        // Result is t[0..N] with a possible extra bit in t[N]; subtract m once
        // if needed (CIOS guarantees t < 2m for m < R/4, which holds for all
        // our moduli since they leave at least 2 spare bits... BLS12-381 Fp is
        // 381 bits in 384, so t < 2m indeed).
        let mut res = [0u64; N];
        let mut j = 0;
        while j < N {
            res[j] = t[j];
            j += 1;
        }
        let res = Uint::new(res);
        let (sub, borrow) = res.sub_borrow(&self.modulus);
        if t[N] != 0 || borrow == 0 {
            sub
        } else {
            res
        }
    }

    /// Montgomery squaring.
    #[inline]
    pub const fn square(&self, a: &Uint<N>) -> Uint<N> {
        self.mul(a, a)
    }

    /// Modular addition of two values (Montgomery or canonical — form is
    /// preserved).
    #[inline]
    pub const fn add(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let (s, carry) = a.add_carry(b);
        let (sub, borrow) = s.sub_borrow(&self.modulus);
        if carry != 0 || borrow == 0 {
            sub
        } else {
            s
        }
    }

    /// Modular subtraction.
    #[inline]
    pub const fn sub(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let (d, borrow) = a.sub_borrow(b);
        if borrow != 0 {
            let (fixed, _) = d.add_carry(&self.modulus);
            fixed
        } else {
            d
        }
    }

    /// Modular negation.
    #[inline]
    pub const fn neg(&self, a: &Uint<N>) -> Uint<N> {
        if a.is_zero() {
            *a
        } else {
            let (d, _) = self.modulus.sub_borrow(a);
            d
        }
    }

    /// Modular doubling.
    #[inline]
    pub const fn double(&self, a: &Uint<N>) -> Uint<N> {
        self.add(a, a)
    }

    /// Exponentiation by a canonical (non-Montgomery) exponent, operating on
    /// a Montgomery-form base and returning a Montgomery-form result.
    /// Square-and-multiply, most-significant bit first.
    pub fn pow<const E: usize>(&self, base: &Uint<N>, exp: &Uint<E>) -> Uint<N> {
        let mut acc = self.r; // 1 in Montgomery form
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Modular inverse of a Montgomery-form value via Fermat's little theorem
    /// (`a^(m-2)`); the modulus must therefore be prime. Returns `None` for 0.
    pub fn inverse(&self, a: &Uint<N>) -> Option<Uint<N>> {
        if a.is_zero() {
            return None;
        }
        let two = Uint::<N>::from_u64(2);
        let (m2, _) = self.modulus.sub_borrow(&two);
        Some(self.pow(a, &m2))
    }

    /// Reduces a double-width value `(lo, hi)` modulo `m`, returning a
    /// canonical integer. Used for deserialization and hash-to-field.
    pub const fn reduce_wide(&self, lo: &Uint<N>, hi: &Uint<N>) -> Uint<N> {
        // x = hi·R + lo  =>  x mod m = mont_mul(hi, R²)·? ... split instead:
        // mont_mul(lo, R²) = lo·R  ... we want plain lo + hi·R mod m:
        //   lo mod m        = mont_mul(lo, R2) then from_mont — or directly:
        // value = hi·R + lo. Note mont_mul(hi, R2) = hi·R mod m.
        let hi_part = self.mul(hi, &self.r2); // hi·R mod m
                                              // lo mod m: lo may exceed m; subtract at most ... use mont roundtrip:
        let lo_mont = self.mul(lo, &self.r2); // lo·R mod m
        let lo_part = self.mul(&lo_mont, &Uint::ONE); // lo mod m
        self.add(&hi_part, &lo_part)
    }

    /// Reduces an arbitrary big-endian byte string modulo `m` (canonical
    /// result). Processes the bytes in `N`-limb chunks most-significant
    /// first: `acc = acc·2^(64N) + chunk (mod m)`.
    pub fn reduce_be_bytes(&self, bytes: &[u8]) -> Uint<N> {
        let chunk_len = 8 * N;
        let mut acc = Uint::<N>::ZERO; // canonical
        let mut idx = 0;
        // Left-pad the first partial chunk.
        let first = bytes.len() % chunk_len;
        if first != 0 {
            let mut buf = vec![0u8; chunk_len];
            buf[chunk_len - first..].copy_from_slice(&bytes[..first]);
            let v = Uint::<N>::from_be_bytes(&buf);
            acc = self.reduce_wide(&v, &Uint::ZERO);
            idx = first;
        }
        while idx < bytes.len() {
            let v = Uint::<N>::from_be_bytes(&bytes[idx..idx + chunk_len]);
            // acc = acc * 2^(64N) + v  (mod m)  ==  reduce_wide(v, acc)
            acc = self.reduce_wide(&v, &acc);
            idx += chunk_len;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // 2^64 - 59, a prime.
    const P1: MontParams<1> = MontParams::new(Uint::new([0xffffffffffffffc5]));
    // A 128-bit prime: 2^127 - 1 is NOT prime... use 2^128 - 159 (prime).
    const P2: MontParams<2> = MontParams::new(Uint::new([0xffffffffffffff61, 0xffffffffffffffff]));

    fn u1(v: u64) -> Uint<1> {
        Uint::from_u64(v)
    }

    #[test]
    fn constants_sane_one_limb() {
        // R mod m for m = 2^64 - 59 is 59.
        assert_eq!(P1.one(), u1(59));
        // inv * m ≡ -1 mod 2^64
        let m0 = P1.modulus().limbs()[0];
        assert_eq!(m0.wrapping_mul(P1.inv()), u64::MAX);
    }

    #[test]
    fn mont_roundtrip() {
        for v in [0u64, 1, 2, 59, 0xdeadbeef, 0xffffffffffffffc4] {
            let x = u1(v);
            assert_eq!(P1.from_mont(&P1.to_mont(&x)), x, "v={v}");
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let m = 0xffffffffffffffc5u128;
        let cases = [
            (3u64, 5u64),
            (0xffffffffffffffc4, 0xffffffffffffffc4),
            (0x123456789abcdef0, 0xfedcba9876543210),
        ];
        for (a, b) in cases {
            let am = P1.to_mont(&u1(a));
            let bm = P1.to_mont(&u1(b));
            let got = P1.from_mont(&P1.mul(&am, &bm));
            let want = ((a as u128 * b as u128) % m) as u64;
            assert_eq!(got, u1(want), "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn add_sub_neg() {
        let a = P1.to_mont(&u1(100));
        let b = P1.to_mont(&u1(250));
        let s = P1.add(&a, &b);
        assert_eq!(P1.from_mont(&s), u1(350));
        let d = P1.sub(&a, &b);
        let neg150 = P1.neg(&P1.to_mont(&u1(150)));
        assert_eq!(d, neg150);
        assert_eq!(P1.neg(&Uint::ZERO), Uint::ZERO);
    }

    #[test]
    fn pow_small() {
        let b = P1.to_mont(&u1(3));
        let e = Uint::<1>::from_u64(10);
        assert_eq!(P1.from_mont(&P1.pow(&b, &e)), u1(59049));
        // a^0 = 1
        assert_eq!(P1.pow(&b, &Uint::<1>::ZERO), P1.one());
    }

    #[test]
    fn fermat_inverse() {
        for v in [1u64, 2, 3, 59, 0xdeadbeef] {
            let a = P1.to_mont(&u1(v));
            let ai = P1.inverse(&a).unwrap();
            assert_eq!(P1.from_mont(&P1.mul(&a, &ai)), u1(1), "v={v}");
        }
        assert!(P1.inverse(&Uint::ZERO).is_none());
    }

    #[test]
    fn two_limb_field_behaves() {
        let a = P2.to_mont(&Uint::new([7, 0]));
        let b = P2.to_mont(&Uint::new([0, 3])); // 3 * 2^64
        let ab = P2.from_mont(&P2.mul(&a, &b));
        assert_eq!(ab, Uint::new([0, 21]));
        // inverse roundtrip
        let ai = P2.inverse(&a).unwrap();
        assert_eq!(P2.from_mont(&P2.mul(&a, &ai)), Uint::<2>::ONE);
    }

    #[test]
    fn reduce_wide_matches_definition() {
        // x = hi*2^64 + lo mod (2^64-59): 2^64 ≡ 59
        let lo = u1(123);
        let hi = u1(456);
        let got = P1.reduce_wide(&lo, &hi);
        let want = 456u128 * 59 + 123;
        assert_eq!(got, u1(want as u64));
    }

    #[test]
    fn reduce_be_bytes_small_and_large() {
        // Value smaller than the modulus: identity.
        assert_eq!(P1.reduce_be_bytes(&[0x2a]), u1(42));
        // 2^64 ≡ 59 (one byte past a limb).
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(P1.reduce_be_bytes(&bytes), u1(59));
        // Empty input reduces to zero.
        assert_eq!(P1.reduce_be_bytes(&[]), Uint::ZERO);
    }

    #[test]
    fn reference_binary_mod_agrees_with_mont_mul() {
        // Cross-check Montgomery multiplication on the 2-limb prime against a
        // slow shift-and-subtract reference over the 4-limb product.
        fn slow_mod(lo: Uint<2>, hi: Uint<2>, m: Uint<2>) -> Uint<2> {
            // operate on a 4-limb value
            let mut v = [lo.limbs()[0], lo.limbs()[1], hi.limbs()[0], hi.limbs()[1]];
            let mbig = [m.limbs()[0], m.limbs()[1], 0, 0];
            // shift m left so its top bit aligns, then conditional-subtract down
            let vbits = {
                let u = Uint::<4>::new(v);
                u.bits()
            };
            let mbits = m.bits();
            if vbits >= mbits {
                for shift in (0..=vbits - mbits).rev() {
                    // t = m << shift
                    let mut t = [0u64; 4];
                    for i in 0..4 {
                        let word = shift / 64;
                        let bits = shift % 64;
                        if i >= word {
                            t[i] = mbig[i - word] << bits;
                            if bits > 0 && i - word > 0 {
                                t[i] |= mbig[i - word - 1] >> (64 - bits);
                            }
                        }
                    }
                    let vt = Uint::<4>::new(v);
                    let tt = Uint::<4>::new(t);
                    let (d, borrow) = vt.sub_borrow(&tt);
                    if borrow == 0 {
                        v = d.limbs();
                    }
                }
            }
            Uint::new([v[0], v[1]])
        }

        let a = Uint::<2>::new([0x0123456789abcdef, 0x0fedcba987654321]);
        let b = Uint::<2>::new([0xaaaaaaaaaaaaaaaa, 0x5555555555555555]);
        let (lo, hi) = a.mul_wide(&b);
        let want = slow_mod(lo, hi, P2.modulus());
        let am = P2.to_mont(&a);
        let bm = P2.to_mont(&b);
        let got = P2.from_mont(&P2.mul(&am, &bm));
        assert_eq!(got, want);
    }
}
