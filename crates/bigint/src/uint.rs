//! [`Uint`]: a fixed-width little-endian multiprecision unsigned integer.

use core::cmp::Ordering;
use core::fmt;

/// Add with carry: returns `(sum, carry_out)` for `a + b + carry`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow_out)` for `a - b - borrow`,
/// where `borrow` is 0 or 1 and `borrow_out` is 0 or 1.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: returns `(lo, hi)` of `acc + a * b + carry`.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// A fixed-width unsigned integer with `N` little-endian 64-bit limbs.
///
/// `Uint` is a plain value type: all operations are free functions or
/// methods returning new values, and nothing here reduces modulo anything —
/// modular arithmetic lives in [`crate::MontParams`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const N: usize>(pub(crate) [u64; N]);

impl<const N: usize> Uint<N> {
    /// The value 0.
    pub const ZERO: Self = Self([0; N]);

    /// The value 1.
    pub const ONE: Self = {
        let mut l = [0u64; N];
        l[0] = 1;
        Self(l)
    };

    /// Constructs a `Uint` from little-endian limbs.
    #[inline]
    pub const fn new(limbs: [u64; N]) -> Self {
        Self(limbs)
    }

    /// Constructs a `Uint` from a single `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        let mut l = [0u64; N];
        l[0] = v;
        Self(l)
    }

    /// Returns the little-endian limb array.
    #[inline]
    pub const fn limbs(&self) -> [u64; N] {
        self.0
    }

    /// True if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        let mut acc = 0u64;
        let mut i = 0;
        while i < N {
            acc |= self.0[i];
            i += 1;
        }
        acc == 0
    }

    /// True if the value is odd.
    #[inline]
    pub const fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Returns bit `i` (0 = least significant). Bits past the width are 0.
    #[inline]
    pub const fn bit(&self, i: usize) -> bool {
        if i >= 64 * N {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (position of the highest set bit + 1;
    /// 0 for the value zero).
    pub const fn bits(&self) -> usize {
        let mut i = N;
        while i > 0 {
            i -= 1;
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Constant-time equality: 1 if equal, 0 otherwise, without
    /// data-dependent branches.
    #[inline]
    pub fn ct_eq(&self, other: &Self) -> u64 {
        let mut acc = 0u64;
        for i in 0..N {
            acc |= self.0[i] ^ other.0[i];
        }
        //

        ((acc | acc.wrapping_neg()) >> 63) ^ 1
    }

    /// `self + rhs`, returning `(sum, carry_out)`.
    #[inline]
    pub const fn add_carry(&self, rhs: &Self) -> (Self, u64) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        let mut i = 0;
        while i < N {
            let (s, c) = adc(self.0[i], rhs.0[i], carry);
            out[i] = s;
            carry = c;
            i += 1;
        }
        (Self(out), carry)
    }

    /// `self - rhs`, returning `(difference, borrow_out)`.
    #[inline]
    pub const fn sub_borrow(&self, rhs: &Self) -> (Self, u64) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < N {
            let (d, b) = sbb(self.0[i], rhs.0[i], borrow);
            out[i] = d;
            borrow = b;
            i += 1;
        }
        (Self(out), borrow)
    }

    /// Wrapping doubling: `(2 * self mod 2^(64N), carry_out)`.
    #[inline]
    pub const fn double_carry(&self) -> (Self, u64) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        let mut i = 0;
        while i < N {
            out[i] = (self.0[i] << 1) | carry;
            carry = self.0[i] >> 63;
            i += 1;
        }
        (Self(out), carry)
    }

    /// Logical right shift by one bit.
    #[inline]
    pub const fn shr1(&self) -> Self {
        let mut out = [0u64; N];
        let mut i = 0;
        while i < N {
            out[i] = self.0[i] >> 1;
            if i + 1 < N {
                out[i] |= self.0[i + 1] << 63;
            }
            i += 1;
        }
        Self(out)
    }

    /// Three-way comparison, most-significant limb first.
    pub const fn cmp_uint(&self, other: &Self) -> Ordering {
        let mut i = N;
        while i > 0 {
            i -= 1;
            if self.0[i] < other.0[i] {
                return Ordering::Less;
            }
            if self.0[i] > other.0[i] {
                return Ordering::Greater;
            }
        }
        Ordering::Equal
    }

    /// Schoolbook full multiplication producing `(lo, hi)` (each `N` limbs).
    pub const fn mul_wide(&self, rhs: &Self) -> (Self, Self) {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        let mut i = 0;
        while i < N {
            let mut carry = 0u64;
            let mut j = 0;
            while j < N {
                let k = i + j;
                if k < N {
                    let (s, c) = mac(lo[k], self.0[i], rhs.0[j], carry);
                    lo[k] = s;
                    carry = c;
                } else {
                    let (s, c) = mac(hi[k - N], self.0[i], rhs.0[j], carry);
                    hi[k - N] = s;
                    carry = c;
                }
                j += 1;
            }
            // propagate the final carry into the high half
            let k = i + N;
            if k < N {
                // unreachable for N >= 1, kept for completeness
            } else {
                let mut idx = k - N;
                let mut c = carry;
                while c != 0 && idx < N {
                    let (s, c2) = adc(hi[idx], c, 0);
                    hi[idx] = s;
                    c = c2;
                    idx += 1;
                }
            }
            i += 1;
        }
        (Self(lo), Self(hi))
    }

    /// Sets bit `i` to 1.
    ///
    /// # Panics
    /// Panics if `i >= 64 * N`.
    #[inline]
    pub fn set_bit(&mut self, i: usize) {
        assert!(i < 64 * N, "bit index out of range");
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Zero-extends into a wider `Uint`.
    ///
    /// # Panics
    /// Panics if `M < N`.
    pub fn widen<const M: usize>(&self) -> Uint<M> {
        assert!(M >= N, "widen target must not be narrower");
        let mut l = [0u64; M];
        l[..N].copy_from_slice(&self.0);
        Uint(l)
    }

    /// Truncates to a narrower `Uint`, asserting no significant limbs are
    /// discarded.
    ///
    /// # Panics
    /// Panics if any dropped limb is non-zero or `M > N`.
    pub fn narrow<const M: usize>(&self) -> Uint<M> {
        assert!(M <= N, "narrow target must not be wider");
        for i in M..N {
            assert_eq!(self.0[i], 0, "narrow would discard significant limbs");
        }
        let mut l = [0u64; M];
        l.copy_from_slice(&self.0[..M]);
        Uint(l)
    }

    /// Builds a `2N`-equivalent value from `(lo, hi)` halves produced by
    /// [`Uint::mul_wide`].
    ///
    /// # Panics
    /// Panics if `M != 2 * K` where `K` is the width of the halves.
    pub fn from_parts<const K: usize>(lo: &Uint<K>, hi: &Uint<K>) -> Uint<N> {
        assert_eq!(N, 2 * K, "from_parts requires N == 2K");
        let mut l = [0u64; N];
        l[..K].copy_from_slice(&lo.0);
        l[K..].copy_from_slice(&hi.0);
        Uint(l)
    }

    /// Long division: returns `(quotient, remainder)`.
    ///
    /// Shift-subtract over the significant bits of `self`; cost is
    /// `O(bits · N)` which is fine for the one-off parameter derivations this
    /// crate is used for.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        let mut q = Self::ZERO;
        let mut r = Self::ZERO;
        for i in (0..self.bits()).rev() {
            let (mut r2, carry) = r.double_carry();
            if self.bit(i) {
                r2.0[0] |= 1;
            }
            let (sub, borrow) = r2.sub_borrow(divisor);
            if carry != 0 || borrow == 0 {
                r = sub;
                q.set_bit(i);
            } else {
                r = r2;
            }
        }
        (q, r)
    }

    /// Big-endian byte serialization (`8 * N` bytes).
    pub fn to_be_bytes(&self) -> [u8; 64] {
        assert!(8 * N <= 64, "Uint wider than serialization buffer");
        let mut out = [0u8; 64];
        for i in 0..N {
            let be = self.0[N - 1 - i].to_be_bytes();
            out[i * 8..i * 8 + 8].copy_from_slice(&be);
        }
        out
    }

    /// Writes exactly `8 * N` big-endian bytes into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != 8 * N`.
    pub fn write_be_bytes(&self, out: &mut [u8]) {
        assert_eq!(out.len(), 8 * N, "output buffer must be exactly 8*N bytes");
        for i in 0..N {
            let be = self.0[N - 1 - i].to_be_bytes();
            out[i * 8..i * 8 + 8].copy_from_slice(&be);
        }
    }

    /// Parses `8 * N` big-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != 8 * N`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), 8 * N, "input must be exactly 8*N bytes");
        let mut l = [0u64; N];
        for i in 0..N {
            let mut limb = [0u8; 8];
            limb.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            l[N - 1 - i] = u64::from_be_bytes(limb);
        }
        Self(l)
    }
}

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_uint(other)
    }
}

impl<const N: usize> fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for i in (0..N).rev() {
            write!(f, "{:016x}", self.0[i])?;
        }
        Ok(())
    }
}

impl<const N: usize> fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<const N: usize> fmt::LowerHex for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..N).rev() {
            write!(f, "{:016x}", self.0[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type U2 = Uint<2>;

    #[test]
    fn adc_sbb_roundtrip() {
        let (s, c) = adc(u64::MAX, 1, 0);
        assert_eq!((s, c), (0, 1));
        let (d, b) = sbb(0, 1, 0);
        assert_eq!((d, b), (u64::MAX, 1));
    }

    #[test]
    fn add_then_sub_is_identity() {
        let a = U2::new([0xdeadbeef, 0x12345678]);
        let b = U2::new([0xffffffffffffffff, 0x1]);
        let (s, c) = a.add_carry(&b);
        assert_eq!(c, 0);
        let (d, bo) = s.sub_borrow(&b);
        assert_eq!(bo, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn sub_underflow_borrows() {
        let (d, b) = U2::ZERO.sub_borrow(&U2::ONE);
        assert_eq!(b, 1);
        assert_eq!(d, U2::new([u64::MAX, u64::MAX]));
    }

    #[test]
    fn mul_wide_small() {
        let a = U2::from_u64(7);
        let b = U2::from_u64(6);
        let (lo, hi) = a.mul_wide(&b);
        assert_eq!(lo, U2::from_u64(42));
        assert!(hi.is_zero());
    }

    #[test]
    fn mul_wide_overflow_into_hi() {
        let a = U2::new([0, 1]); // 2^64
        let b = U2::new([0, 1]); // 2^64
        let (lo, hi) = a.mul_wide(&b); // 2^128
        assert!(lo.is_zero());
        assert_eq!(hi, U2::new([1, 0]));
    }

    #[test]
    fn mul_wide_max() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = U2::new([u64::MAX, u64::MAX]);
        let (lo, hi) = a.mul_wide(&a);
        assert_eq!(lo, U2::new([1, 0]));
        assert_eq!(hi, U2::new([u64::MAX - 1, u64::MAX]));
    }

    #[test]
    fn bits_and_bit() {
        let a = U2::new([0, 0b1000]);
        assert_eq!(a.bits(), 64 + 4);
        assert!(a.bit(67));
        assert!(!a.bit(66));
        assert!(!a.bit(200));
        assert_eq!(U2::ZERO.bits(), 0);
        assert_eq!(U2::ONE.bits(), 1);
    }

    #[test]
    fn shr1_and_double() {
        let a = U2::new([0x3, 0x1]);
        let (d, c) = a.double_carry();
        assert_eq!(c, 0);
        assert_eq!(d, U2::new([0x6, 0x2]));
        assert_eq!(d.shr1(), a);
        // shifting an odd bit across the limb boundary
        let b = U2::new([0, 1]);
        assert_eq!(b.shr1(), U2::new([1 << 63, 0]));
    }

    #[test]
    fn ordering() {
        let a = U2::new([5, 0]);
        let b = U2::new([0, 1]);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = U2::new([0x0123456789abcdef, 0xfedcba9876543210]);
        let mut buf = [0u8; 16];
        a.write_be_bytes(&mut buf);
        assert_eq!(buf[0], 0xfe);
        assert_eq!(buf[15], 0xef);
        assert_eq!(U2::from_be_bytes(&buf), a);
    }

    #[test]
    fn ct_eq_matches_eq() {
        let a = U2::new([1, 2]);
        let b = U2::new([1, 3]);
        assert_eq!(a.ct_eq(&a), 1);
        assert_eq!(a.ct_eq(&b), 0);
    }

    #[test]
    fn div_rem_small() {
        let a = U2::from_u64(100);
        let d = U2::from_u64(7);
        let (q, r) = a.div_rem(&d);
        assert_eq!(q, U2::from_u64(14));
        assert_eq!(r, U2::from_u64(2));
        // exact division
        let (q, r) = U2::from_u64(84).div_rem(&d);
        assert_eq!((q, r), (U2::from_u64(12), U2::ZERO));
        // dividend smaller than divisor
        let (q, r) = d.div_rem(&a);
        assert_eq!((q, r), (U2::ZERO, d));
    }

    #[test]
    fn div_rem_cross_limb() {
        // (2^64 + 5) / 3 = 6148914691236517207 r 0 — check against u128.
        let a = U2::new([5, 1]);
        let d = U2::from_u64(3);
        let (q, r) = a.div_rem(&d);
        let aa = (1u128 << 64) + 5;
        assert_eq!(q, U2::new([(aa / 3) as u64, ((aa / 3) >> 64) as u64]));
        assert_eq!(r, U2::from_u64((aa % 3) as u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = U2::ONE.div_rem(&U2::ZERO);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let a = U2::new([1, 2]);
        let w: Uint<4> = a.widen();
        assert_eq!(w, Uint::<4>::new([1, 2, 0, 0]));
        assert_eq!(w.narrow::<2>(), a);
    }

    #[test]
    #[should_panic(expected = "discard")]
    fn narrow_losing_limbs_panics() {
        let w = Uint::<4>::new([1, 2, 3, 0]);
        let _ = w.narrow::<2>();
    }

    #[test]
    fn from_parts_matches_mul_wide() {
        let a = U2::new([u64::MAX, 7]);
        let (lo, hi) = a.mul_wide(&a);
        let wide = Uint::<4>::from_parts(&lo, &hi);
        // check via div_rem: wide / a == a (remainder 0)
        let (q, r) = wide.div_rem(&a.widen::<4>());
        assert_eq!(q, a.widen::<4>());
        assert!(r.is_zero());
    }

    #[test]
    fn set_bit_works() {
        let mut a = U2::ZERO;
        a.set_bit(64);
        assert_eq!(a, U2::new([0, 1]));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{:?}", U2::ZERO).is_empty());
        assert_eq!(format!("{}", U2::ONE), format!("{:?}", U2::ONE));
    }
}
