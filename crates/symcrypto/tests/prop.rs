//! Property-based tests: AEAD roundtrips under arbitrary inputs, CTR
//! involution, SHA-256 incremental consistency, HKDF determinism.

use proptest::prelude::*;
use symcrypto::aes::{ctr_xor, Aes};
use symcrypto::gcm::AesGcm;
use symcrypto::hmac::{hkdf, hmac_sha256};
use symcrypto::sha256::{sha256, Sha256};

proptest! {
    #[test]
    fn gcm_roundtrip_arbitrary(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let gcm = AesGcm::new(&key);
        let sealed = gcm.seal(&nonce, &aad, &pt);
        prop_assert_eq!(gcm.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn gcm_any_single_bit_flip_fails(
        key in any::<[u8; 32]>(),
        pt in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..64,
    ) {
        let gcm = AesGcm::new(&key);
        let nonce = [0u8; 12];
        let mut sealed = gcm.seal(&nonce, b"", &pt);
        let bit = flip_bit % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(gcm.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn ctr_is_an_involution(
        key in any::<[u8; 32]>(),
        iv in any::<[u8; 16]>(),
        mut data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes::new(&key);
        let orig = data.clone();
        ctr_xor(&aes, &iv, &mut data);
        ctr_xor(&aes, &iv, &mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        k1 in proptest::collection::vec(any::<u8>(), 1..48),
        k2 in proptest::collection::vec(any::<u8>(), 1..48),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }

    #[test]
    fn hkdf_is_deterministic_and_info_separated(
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info1 in proptest::collection::vec(any::<u8>(), 0..32),
        info2 in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut a = [0u8; 42];
        let mut b = [0u8; 42];
        hkdf(b"salt", &ikm, &info1, &mut a);
        hkdf(b"salt", &ikm, &info1, &mut b);
        prop_assert_eq!(a, b);
        if info1 != info2 {
            let mut c = [0u8; 42];
            hkdf(b"salt", &ikm, &info2, &mut c);
            prop_assert_ne!(a, c);
        }
    }
}
