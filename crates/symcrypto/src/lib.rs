//! # symcrypto — symmetric-cryptography substrate
//!
//! From-scratch implementations of the symmetric primitives the IBBE-SGX
//! system needs, standing in for the OpenSSL port the paper uses inside SGX
//! (Intel SGX-SSL):
//!
//! * [`mod@sha256`] — SHA-256 (FIPS 180-4), used as the paper's `sgx_sha` for
//!   deriving AES keys from broadcast keys;
//! * [`aes`] / [`gcm`] — AES-128/256 and AES-GCM (the paper's `sgx_aes`,
//!   at the 256-bit "maximal security level");
//! * [`hmac`] — HMAC-SHA256, HKDF and constant-time comparison;
//! * [`drbg`] — HMAC-DRBG with a [`rand::RngCore`] adapter for deterministic
//!   in-enclave randomness.
//!
//! Every primitive is validated against FIPS/NIST/RFC test vectors in its
//! module tests.
//!
//! ```
//! use symcrypto::gcm::AesGcm;
//! let gcm = AesGcm::new(&[0u8; 32]);
//! let sealed = gcm.seal(&[0u8; 12], b"ctx", b"group key");
//! assert_eq!(gcm.open(&[0u8; 12], b"ctx", &sealed).unwrap(), b"group key");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod drbg;
pub mod gcm;
pub mod hmac;
pub mod sha256;

pub use aes::Aes;
pub use drbg::HmacDrbg;
pub use gcm::{AesGcm, AuthError, NONCE_LEN, TAG_LEN};
pub use hmac::{ct_eq, hkdf, hmac_sha256};
pub use sha256::{sha256, Sha256};
