//! AES-GCM authenticated encryption (NIST SP 800-38D).

use crate::aes::{ctr_xor, inc32, Aes, BLOCK_LEN};
use crate::hmac::ct_eq;

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Nonce (IV) length in bytes; only the standard 96-bit IV is supported.
pub const NONCE_LEN: usize = 12;

/// Error returned when decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GCM authentication failed")
    }
}

impl std::error::Error for AuthError {}

/// GF(2¹²⁸) multiplication with the GCM bit order (right-shift variant,
/// reduction polynomial `R = 0xe1 ∥ 0¹²⁰`).
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(buf)
}

/// GHASH over `aad` and `ct` with hash subkey `h`.
fn ghash(h: u128, aad: &[u8], ct: &[u8]) -> [u8; 16] {
    let mut y = 0u128;
    for chunk in aad.chunks(BLOCK_LEN) {
        y = gf_mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ct.chunks(BLOCK_LEN) {
        y = gf_mul(y ^ block_to_u128(chunk), h);
    }
    let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    y = gf_mul(y ^ lens, h);
    y.to_be_bytes()
}

/// An AES-GCM key (any AES key size accepted by [`Aes::new`]).
#[derive(Clone, Debug)]
pub struct AesGcm {
    aes: Aes,
    h: u128,
}

impl AesGcm {
    /// Creates a GCM instance from raw key bytes (16 or 32).
    pub fn new(key: &[u8]) -> Self {
        let aes = Aes::new(key);
        let h = u128::from_be_bytes(aes.encrypt_block_copy(&[0u8; 16]));
        Self { aes, h }
    }

    fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Encrypts `plaintext` with associated data `aad`, returning
    /// `ciphertext ‖ tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let j0 = Self::j0(nonce);
        let mut ctr = j0;
        inc32(&mut ctr);
        let mut ct = plaintext.to_vec();
        ctr_xor(&self.aes, &ctr, &mut ct);
        let s = ghash(self.h, aad, &ct);
        let ek_j0 = self.aes.encrypt_block_copy(&j0);
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ ek_j0[i];
        }
        ct.extend_from_slice(&tag);
        ct
    }

    /// Verifies and decrypts `ciphertext ‖ tag`.
    ///
    /// # Errors
    /// Returns [`AuthError`] if the input is too short or the tag does not
    /// verify; no plaintext is released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, AuthError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(AuthError);
        }
        let (ct, tag) = ciphertext_and_tag.split_at(ciphertext_and_tag.len() - TAG_LEN);
        let j0 = Self::j0(nonce);
        let s = ghash(self.h, aad, ct);
        let ek_j0 = self.aes.encrypt_block_copy(&j0);
        let mut expect = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            expect[i] = s[i] ^ ek_j0[i];
        }
        if !ct_eq(&expect, tag) {
            return Err(AuthError);
        }
        let mut pt = ct.to_vec();
        let mut ctr = j0;
        inc32(&mut ctr);
        ctr_xor(&self.aes, &ctr, &mut pt);
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn nist_aes128_gcm_empty() {
        // NIST GCM test case 1
        let gcm = AesGcm::new(&[0u8; 16]);
        // Tag = E_K(J0); value cross-checked against `openssl enc -aes-128-ecb`.
        let out = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&out), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_aes128_gcm_one_block() {
        // NIST GCM test case 2
        let gcm = AesGcm::new(&[0u8; 16]);
        let out = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(
            hex(&out),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    #[test]
    fn nist_aes256_gcm_empty() {
        // NIST GCM test case 13
        let gcm = AesGcm::new(&[0u8; 32]);
        let out = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&out), "530f8afbc74536b9a963b4f1c4cb738b");
    }

    #[test]
    fn nist_aes256_gcm_one_block() {
        // NIST GCM test case 14
        let gcm = AesGcm::new(&[0u8; 32]);
        let out = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(
            hex(&out),
            "cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919"
        );
    }

    #[test]
    fn roundtrip_with_aad() {
        let gcm = AesGcm::new(&[42u8; 32]);
        let nonce = [1u8; 12];
        let sealed = gcm.seal(&nonce, b"header", b"the group key");
        let opened = gcm.open(&nonce, b"header", &sealed).unwrap();
        assert_eq!(opened, b"the group key");
    }

    #[test]
    fn tamper_detection() {
        let gcm = AesGcm::new(&[42u8; 32]);
        let nonce = [1u8; 12];
        let mut sealed = gcm.seal(&nonce, b"aad", b"secret");
        // flip a ciphertext bit
        sealed[0] ^= 1;
        assert_eq!(gcm.open(&nonce, b"aad", &sealed), Err(AuthError));
        sealed[0] ^= 1;
        // wrong AAD
        assert_eq!(gcm.open(&nonce, b"aax", &sealed), Err(AuthError));
        // truncated input
        assert_eq!(gcm.open(&nonce, b"aad", &sealed[..10]), Err(AuthError));
        // wrong nonce
        assert_eq!(gcm.open(&[2u8; 12], b"aad", &sealed), Err(AuthError));
        // original still opens
        assert!(gcm.open(&nonce, b"aad", &sealed).is_ok());
    }

    #[test]
    fn gf_mul_is_commutative_and_distributive() {
        let a = 0x0123456789abcdef0123456789abcdefu128;
        let b = 0xfedcba9876543210fedcba9876543210u128;
        let c = 0xaaaaaaaaaaaaaaaa5555555555555555u128;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
        assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
        assert_eq!(gf_mul(a, 0), 0);
    }

    #[test]
    fn multiblock_and_unaligned_lengths() {
        let gcm = AesGcm::new(&unhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        ));
        for len in [1usize, 15, 16, 17, 31, 32, 100] {
            let pt: Vec<u8> = (0..len as u8).collect();
            let nonce = [3u8; 12];
            let sealed = gcm.seal(&nonce, b"x", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(gcm.open(&nonce, b"x", &sealed).unwrap(), pt, "len={len}");
        }
    }
}
