//! HMAC-DRBG (NIST SP 800-90A) over SHA-256, with a [`rand::RngCore`]
//! adapter so the deterministic generator can drive any rand-based API.
//!
//! Used by the enclave simulator for reproducible in-enclave randomness and
//! by the benchmark harness for seeded workloads.

use crate::hmac::hmac_sha256;

/// Deterministic random bit generator (HMAC-SHA256 construction).
#[derive(Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates from seed material (entropy ‖ nonce ‖ personalization).
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = Self {
            k: [0u8; 32],
            v: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut data = Vec::with_capacity(33 + provided.map_or(0, |p| p.len()));
        data.extend_from_slice(&self.v);
        data.push(0x00);
        if let Some(p) = provided {
            data.extend_from_slice(p);
        }
        self.k = hmac_sha256(&self.k, &data);
        self.v = hmac_sha256(&self.k, &self.v);
        if let Some(p) = provided {
            let mut data = Vec::with_capacity(33 + p.len());
            data.extend_from_slice(&self.v);
            data.push(0x01);
            data.extend_from_slice(p);
            self.k = hmac_sha256(&self.k, &data);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (out.len() - filled).min(32);
            out[filled..filled + take].copy_from_slice(&self.v[..take]);
            filled += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }
}

impl core::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "HmacDrbg(reseed_counter={})", self.reseed_counter)
    }
}

impl rand::RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.generate(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.generate(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.generate(dest);
        Ok(())
    }
}

impl rand::CryptoRng for HmacDrbg {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed material");
        let mut b = HmacDrbg::new(b"seed material");
        let mut x = [0u8; 64];
        let mut y = [0u8; 64];
        a.generate(&mut x);
        b.generate(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed 1");
        let mut b = HmacDrbg::new(b"seed 2");
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.generate(&mut x);
        b.generate(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn successive_outputs_differ() {
        let mut a = HmacDrbg::new(b"seed");
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.generate(&mut x);
        a.generate(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        b.reseed(b"extra entropy");
        let mut x = [0u8; 32];
        let mut y = [0u8; 32];
        a.generate(&mut x);
        b.generate(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn rngcore_adapter_works() {
        let mut a = HmacDrbg::new(b"rng");
        let v1 = a.next_u64();
        let v2 = a.next_u64();
        assert_ne!(v1, v2);
        let mut buf = [0u8; 7];
        a.fill_bytes(&mut buf);
    }

    #[test]
    fn long_generate_spans_blocks() {
        let mut a = HmacDrbg::new(b"long");
        let mut out = [0u8; 100];
        a.generate(&mut out);
        assert!(out.iter().any(|&b| b != 0));
    }
}
