//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `out.len()` bytes from `prk` and `info`.
///
/// # Panics
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut filled = 0;
    while filled < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - filled).min(DIGEST_LEN);
        out[filled..filled + take].copy_from_slice(&block[..take]);
        filled += take;
        t = block.to_vec();
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
}

/// One-call HKDF (extract + expand).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, out);
}

/// Constant-time byte-slice equality (length must match; length itself is
/// not secret).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_long_key() {
        // case 6: 131-byte key forces the key-hashing path
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_multiblock_expand() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut out = [0u8; 100]; // > 3 HMAC blocks
        hkdf_expand(&prk, b"ctx", &mut out);
        // deterministic and not all-zero
        assert!(out.iter().any(|&b| b != 0));
        let mut out2 = [0u8; 100];
        hkdf_expand(&prk, b"ctx", &mut out2);
        assert_eq!(out, out2);
        // different info differs
        let mut out3 = [0u8; 100];
        hkdf_expand(&prk, b"ctx2", &mut out3);
        assert_ne!(out, out3);
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn incremental_hmac_matches_oneshot() {
        let key = b"0123456789";
        let mut mac = HmacSha256::new(key);
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(key, b"hello world"));
    }
}
