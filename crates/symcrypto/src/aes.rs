//! AES block cipher (FIPS 197), encryption direction.
//!
//! The S-box and round constants are derived programmatically from the
//! GF(2⁸) structure instead of being transcribed, and the implementation is
//! validated against the FIPS 197 appendix vectors. Only the encryption
//! direction is provided — CTR and GCM modes never invert the block cipher.

use std::sync::OnceLock;

/// Block size in bytes.
pub const BLOCK_LEN: usize = 16;

fn sbox() -> &'static [u8; 256] {
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        // exp/log tables for GF(2^8) with generator 3 (x+1)
        let mut exp = [0u8; 256];
        let mut log = [0u8; 256];
        let mut x = 1u8;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x;
            log[x as usize] = i as u8;
            // multiply x by 3: x ^= xtime(x)
            let hi = x & 0x80 != 0;
            let mut xt = x << 1;
            if hi {
                xt ^= 0x1b;
            }
            x ^= xt;
        }
        exp[255] = exp[0];

        let mut s = [0u8; 256];
        for (i, slot) in s.iter_mut().enumerate() {
            let inv = if i == 0 {
                0
            } else {
                exp[255 - log[i] as usize]
            };
            // affine transform
            let b = inv;
            *slot = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
        }
        s
    })
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// AES key sizes supported by [`Aes`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeySize {
    /// AES-128 (10 rounds). Present for test-vector coverage; the IBBE-SGX
    /// system itself always uses 256-bit keys ("maximal security level",
    /// paper §V-B).
    Aes128,
    /// AES-256 (14 rounds) — the paper's choice.
    Aes256,
}

/// An AES encryption key schedule.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands a key. `key.len()` must be 16 (AES-128) or 32 (AES-256).
    ///
    /// # Panics
    /// Panics if the key length does not match a supported [`KeySize`].
    pub fn new(key: &[u8]) -> Self {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            32 => (8, 14),
            n => panic!("unsupported AES key length {n}"),
        };
        let s = sbox();
        let nw = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; nw];
        for i in 0..nk {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in nk..nw {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = s[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = s[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = (0..=rounds)
            .map(|r| {
                let mut rk = [0u8; 16];
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                rk
            })
            .collect();
        Self { round_keys, rounds }
    }

    /// Creates an AES-256 schedule from a 32-byte key.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::new(key)
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let s = sbox();
        let add_rk = |b: &mut [u8; 16], rk: &[u8; 16]| {
            for i in 0..16 {
                b[i] ^= rk[i];
            }
        };
        add_rk(block, &self.round_keys[0]);
        for round in 1..=self.rounds {
            // SubBytes
            for b in block.iter_mut() {
                *b = s[*b as usize];
            }
            // ShiftRows (state is column-major: byte (r, c) at 4c + r)
            let prev = *block;
            for r in 1..4 {
                for c in 0..4 {
                    block[4 * c + r] = prev[4 * ((c + r) % 4) + r];
                }
            }
            // MixColumns (skipped in the final round)
            if round != self.rounds {
                for c in 0..4 {
                    let col = [
                        block[4 * c],
                        block[4 * c + 1],
                        block[4 * c + 2],
                        block[4 * c + 3],
                    ];
                    block[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
                    block[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
                    block[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
                    block[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
                }
            }
            add_rk(block, &self.round_keys[round]);
        }
    }

    /// Encrypts a copy of `block` and returns it.
    pub fn encrypt_block_copy(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut b = *block;
        self.encrypt_block(&mut b);
        b
    }
}

impl core::fmt::Debug for Aes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Aes({} rounds, key material redacted)", self.rounds)
    }
}

/// AES-CTR keystream XOR: encrypts or decrypts `data` in place with the
/// 16-byte initial counter block `iv_counter` (incremented big-endian on the
/// low 32 bits, GCM-style).
pub fn ctr_xor(aes: &Aes, iv_counter: &[u8; 16], data: &mut [u8]) {
    let mut counter = *iv_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = aes.encrypt_block_copy(&counter);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        inc32(&mut counter);
    }
}

/// Increments the last 32 bits of a counter block (big-endian, wrapping).
pub fn inc32(block: &mut [u8; 16]) {
    let mut v = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    v = v.wrapping_add(1);
    block[12..].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        let s = sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
    }

    #[test]
    fn fips197_c1_aes128() {
        let key = unhex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key);
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_c3_aes256() {
        let key = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key);
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn bad_key_length_panics() {
        let _ = Aes::new(&[0u8; 17]);
    }

    #[test]
    fn ctr_roundtrip_and_partial_block() {
        let aes = Aes::new(&[7u8; 32]);
        let iv = [9u8; 16];
        let mut data = b"attack at dawn -- 19 bytes".to_vec();
        let orig = data.clone();
        ctr_xor(&aes, &iv, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&aes, &iv, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn inc32_wraps() {
        let mut b = [0u8; 16];
        b[12..].copy_from_slice(&u32::MAX.to_be_bytes());
        b[0] = 0xaa;
        inc32(&mut b);
        assert_eq!(&b[12..], &[0, 0, 0, 0]);
        assert_eq!(b[0], 0xaa, "upper 96 bits untouched");
    }
}
