//! Workspace-level integration tests exercising the full stack through the
//! facade crate: pairing → IBBE → enclave → partitioning → cloud → client,
//! plus the workload generators driving the real system.

use ibbe_sgx::acs::{bootstrap_admin, provisioning, Client};
use ibbe_sgx::cloud::{CloudStore, LatencyModel};
use ibbe_sgx::core::{client_decrypt_group_key, GroupEngine, PartitionSize};
use ibbe_sgx::symcrypto::gcm::AesGcm;
use ibbe_sgx::workloads::{
    generate_kernel_trace, replay, KernelTraceConfig, ReplayBackend, TraceOp,
};
use std::time::Duration;

#[test]
fn whole_stack_smoke() {
    let mut rng = rand::thread_rng();
    let cloud = CloudStore::new();
    let admin = bootstrap_admin(PartitionSize::new(4).unwrap(), cloud.clone(), &mut rng).unwrap();
    let (trust, cert) = provisioning::establish_trust(admin.engine(), &mut rng).unwrap();
    let ca = trust.auditor.ca_verifying_key();

    let members: Vec<String> = (0..10).map(|i| format!("m{i}")).collect();
    admin.create_group("g", members.clone()).unwrap();

    // every member provisions through the attested channel and decrypts
    let mut keys = Vec::new();
    for m in &members {
        let usk = provisioning::provision_user(admin.engine(), &cert, &ca, m, &mut rng).unwrap();
        let mut c = Client::new(
            m.clone(),
            usk,
            admin.engine().public_key().clone(),
            cloud.clone(),
            "g",
        );
        keys.push(c.sync().unwrap());
    }
    assert!(keys.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn group_key_actually_protects_data() {
    // The end purpose: gk encrypts group data; only members can read it.
    let mut rng = rand::thread_rng();
    let engine = GroupEngine::bootstrap(PartitionSize::new(4).unwrap(), &mut rng).unwrap();
    let members = vec!["writer".to_string(), "reader".to_string()];
    let meta = engine.create_group("vault", members).unwrap();

    let writer_usk = engine.extract_user_key("writer").unwrap();
    let gk = client_decrypt_group_key(engine.public_key(), &writer_usk, "writer", &meta).unwrap();
    let sealed = AesGcm::new(gk.as_bytes()).seal(&[9u8; 12], b"vault", b"payroll.xlsx");

    // reader derives the same key independently and opens the document
    let reader_usk = engine.extract_user_key("reader").unwrap();
    let gk_r = client_decrypt_group_key(engine.public_key(), &reader_usk, "reader", &meta).unwrap();
    assert_eq!(
        AesGcm::new(gk_r.as_bytes())
            .open(&[9u8; 12], b"vault", &sealed)
            .unwrap(),
        b"payroll.xlsx"
    );

    // an outsider's key does not open it
    let outsider_usk = engine.extract_user_key("outsider").unwrap();
    assert!(
        client_decrypt_group_key(engine.public_key(), &outsider_usk, "outsider", &meta).is_err()
    );
}

#[test]
fn kernel_trace_replays_against_real_engine() {
    // Small kernel-style trace through the actual enclave-backed engine,
    // checking membership consistency the whole way.
    struct EngineBackend {
        engine: GroupEngine,
        meta: ibbe_sgx::core::GroupMetadata,
    }
    impl ReplayBackend for EngineBackend {
        fn add_user(&mut self, user: &str) {
            self.engine.add_user(&mut self.meta, user).unwrap();
        }
        fn remove_user(&mut self, user: &str) {
            self.engine.remove_user(&mut self.meta, user).unwrap();
            if self.meta.needs_repartitioning(4) && self.meta.member_count() > 0 {
                self.meta = self.engine.repartition(&self.meta).unwrap();
            }
        }
    }

    let mut rng = rand::thread_rng();
    let engine = GroupEngine::bootstrap(PartitionSize::new(4).unwrap(), &mut rng).unwrap();
    let cfg = KernelTraceConfig {
        ops: 120,
        max_group_size: 16,
        seed: 42,
    };
    let trace = generate_kernel_trace(&cfg);
    let expected_final = trace.stats().final_group_size;

    // seed with the first op's user to satisfy the non-empty group rule
    let TraceOp::Add { user: first } = &trace.ops[0] else {
        panic!("trace must start with an add");
    };
    let meta = engine.create_group("kernel", vec![first.clone()]).unwrap();
    let mut backend = EngineBackend { engine, meta };
    let rest = ibbe_sgx::workloads::Trace {
        name: trace.name.clone(),
        ops: trace.ops[1..].to_vec(),
    };
    let report = replay(&rest, &mut backend, None);
    assert_eq!(backend.meta.member_count(), expected_final);
    assert!(report.total > Duration::ZERO);

    // a random survivor can still decrypt
    let survivor = backend.meta.members().next().map(String::from);
    if let Some(member) = survivor {
        let usk = backend.engine.extract_user_key(&member).unwrap();
        client_decrypt_group_key(backend.engine.public_key(), &usk, &member, &backend.meta)
            .unwrap();
    }
}

#[test]
fn latency_model_propagates_to_client_path() {
    let mut rng = rand::thread_rng();
    let cloud =
        CloudStore::with_latency(LatencyModel::new(Duration::from_millis(5), Duration::ZERO));
    let admin = bootstrap_admin(PartitionSize::new(4).unwrap(), cloud.clone(), &mut rng).unwrap();
    admin.create_group("g", vec!["u".to_string()]).unwrap();
    let usk = admin.engine().extract_user_key("u").unwrap();
    let mut client = Client::new("u", usk, admin.engine().public_key().clone(), cloud, "g");
    let t0 = std::time::Instant::now();
    client.sync().unwrap();
    // at least one GET and one LIST hit the latency model
    assert!(t0.elapsed() >= Duration::from_millis(10));
}

#[test]
fn facade_reexports_compile_and_link() {
    // Each substrate is reachable through the facade (catches wiring rot).
    let _ = ibbe_sgx::bigint::Uint::<4>::ONE;
    let _ = ibbe_sgx::pairing::G1Affine::generator();
    let _ = ibbe_sgx::symcrypto::sha256(b"x");
    let _ = ibbe_sgx::sgx::Measurement::of(b"id");
    let _ = ibbe_sgx::he::HePki;
    let _ = ibbe_sgx::workloads::KernelTraceConfig::default();
}
