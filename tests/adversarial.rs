//! Failure-injection and adversarial tests at the system level: a curious
//! or actively tampering cloud, spliced metadata, stale replays, and
//! cross-group confusion. The system must fail closed — wrong keys must
//! never be silently accepted.

use ibbe_sgx::acs::{bootstrap_admin, AcsError, Client};
use ibbe_sgx::cloud::CloudStore;
use ibbe_sgx::core::{
    client_decrypt_group_key, CoreError, GroupEngine, GroupMetadata, PartitionSize,
};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("u{i}")).collect()
}

#[test]
fn tampered_cloud_object_fails_closed() {
    let mut r = rng(1);
    let store = CloudStore::new();
    let admin = bootstrap_admin(PartitionSize::new(4).unwrap(), store.clone(), &mut r).unwrap();
    admin.create_group("g", names(4)).unwrap();

    // flip one byte of the stored partition object
    let (bytes, _) = store.get("g", "p000000").unwrap();
    let mut forged = bytes.to_vec();
    let n = forged.len();
    forged[n / 2] ^= 0x40;
    store.put("g", "p000000", forged);

    let usk = admin.engine().extract_user_key("u0").unwrap();
    let mut client = Client::new("u0", usk, admin.engine().public_key().clone(), store, "g");
    match client.sync() {
        Ok(_) => panic!("tampered metadata must never yield a key"),
        Err(
            AcsError::WireFormat(_)
            | AcsError::NotAMember(_)
            | AcsError::Core(CoreError::CorruptMetadata(_) | CoreError::Ibbe(_)),
        ) => {}
        Err(other) => panic!("unexpected error kind: {other:?}"),
    }
}

#[test]
fn cross_group_partition_splice_rejected() {
    // The cloud serves group A's partition under group B's folder; the
    // wrapped key is AAD-bound to the group name, so unwrap must fail.
    let mut r = rng(2);
    let engine = GroupEngine::bootstrap(PartitionSize::new(4).unwrap(), &mut r).unwrap();
    let meta_a = engine.create_group("group-a", names(3)).unwrap();
    let meta_b = engine.create_group("group-b", names(3)).unwrap();

    let spliced = GroupMetadata {
        name: meta_b.name.clone(),
        partitions: meta_a.partitions.clone(), // A's partitions under B's name
        sealed_gk: meta_b.sealed_gk.clone(),
        epoch: meta_b.epoch,
        key_history: meta_b.key_history.clone(),
        log_head: None,
    };
    let usk = engine.extract_user_key("u0").unwrap();
    let res = client_decrypt_group_key(engine.public_key(), &usk, "u0", &spliced);
    assert!(
        matches!(res, Err(CoreError::CorruptMetadata(_))),
        "cross-group splice must fail the wrap AAD check, got {res:?}"
    );
}

#[test]
fn stale_metadata_replay_cannot_reveal_rotated_key() {
    // A cloud colluding with a revoked user replays the pre-revocation
    // metadata. The revoked user recovers the OLD gk (expected — they held
    // it legitimately), but nothing about the NEW key.
    let mut r = rng(3);
    let engine = GroupEngine::bootstrap(PartitionSize::new(4).unwrap(), &mut r).unwrap();
    let mut meta = engine.create_group("g", names(3)).unwrap();
    let stale = meta.clone();

    let usk = engine.extract_user_key("u1").unwrap();
    let gk_old = client_decrypt_group_key(engine.public_key(), &usk, "u1", &stale).unwrap();
    engine.remove_user(&mut meta, "u1").unwrap();

    // stale replay still yields only the old key
    let replayed = client_decrypt_group_key(engine.public_key(), &usk, "u1", &stale).unwrap();
    assert_eq!(replayed, gk_old);
    // and the fresh metadata yields nothing for the revoked user
    assert!(client_decrypt_group_key(engine.public_key(), &usk, "u1", &meta).is_err());
    // while survivors get a key different from the leaked old one
    let usk0 = engine.extract_user_key("u0").unwrap();
    let gk_new = client_decrypt_group_key(engine.public_key(), &usk0, "u0", &meta).unwrap();
    assert_ne!(gk_new, gk_old);
}

#[test]
fn sealed_blob_from_other_group_is_rejected_by_enclave() {
    // Algorithm 2's new-partition path must unseal gk; a spliced sealed
    // blob (from another group) fails the AAD binding inside the enclave.
    let mut r = rng(4);
    let engine = GroupEngine::bootstrap(PartitionSize::new(1).unwrap(), &mut r).unwrap();
    let mut meta = engine.create_group("g1", names(2)).unwrap(); // partitions full
    let other = engine.create_group("g2", names(1)).unwrap();
    meta.sealed_gk = other.sealed_gk; // cloud swaps the sealed objects
    let res = engine.add_user(&mut meta, "late");
    assert!(
        matches!(res, Err(CoreError::Sgx(_))),
        "spliced sealed gk must fail to unseal, got {res:?}"
    );
}

#[test]
fn truncated_and_oversized_cloud_objects_rejected() {
    let mut r = rng(5);
    let store = CloudStore::new();
    let admin = bootstrap_admin(PartitionSize::new(4).unwrap(), store.clone(), &mut r).unwrap();
    admin.create_group("g", names(2)).unwrap();
    let (bytes, _) = store.get("g", "p000000").unwrap();

    // truncated
    store.put("g", "p000000", bytes.slice(..bytes.len() - 3));
    let usk = admin.engine().extract_user_key("u0").unwrap();
    let mut c = Client::new(
        "u0",
        usk,
        admin.engine().public_key().clone(),
        store.clone(),
        "g",
    );
    assert!(c.sync().is_err());

    // trailing garbage
    let mut extended = bytes.to_vec();
    extended.extend_from_slice(b"xx");
    store.put("g", "p000000", extended);
    assert!(c.sync().is_err());

    // restoring the original heals the client
    store.put("g", "p000000", bytes);
    assert!(c.sync().is_ok());
}

#[test]
fn member_list_forgery_in_cloud_cannot_widen_access() {
    // The cloud inserts an attacker identity into a stored member list.
    // The attacker (with a valid USK for their own identity) still cannot
    // derive gk: the IBBE ciphertext's receiver product does not include
    // them, so the unwrap fails.
    let mut r = rng(6);
    let store = CloudStore::new();
    let admin = bootstrap_admin(PartitionSize::new(4).unwrap(), store.clone(), &mut r).unwrap();
    admin.create_group("g", names(3)).unwrap();

    let meta = admin.metadata("g").unwrap();
    let mut forged_partition = meta.partitions[0].clone();
    forged_partition.members.push("mallory".to_string());
    store.put("g", "p000000", forged_partition.to_bytes());

    let usk_mallory = admin.engine().extract_user_key("mallory").unwrap();
    let mut mallory = Client::new(
        "mallory",
        usk_mallory,
        admin.engine().public_key().clone(),
        store,
        "g",
    );
    match mallory.sync() {
        Ok(_) => panic!("forged member list must not grant access"),
        Err(AcsError::Core(CoreError::CorruptMetadata(_))) => {}
        Err(other) => panic!("unexpected error: {other:?}"),
    }
}
