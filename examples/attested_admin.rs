//! Trust establishment end-to-end (paper Fig. 3): platform quoting, the
//! simulated Intel Attestation Service, the Auditor/CA, certificate
//! verification by users, and what happens when a rogue enclave tries to
//! impersonate the key issuer.
//!
//! ```sh
//! cargo run --release --example attested_admin
//! ```

use ibbe_sgx::acs::{provisioning, KeyRequest};
use ibbe_sgx::core::{GroupEngine, PartitionSize};
use ibbe_sgx::sgx::{report_data_for_key, Measurement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let engine = GroupEngine::bootstrap(PartitionSize::new(8)?, &mut rng)?;

    // Steps 1–3: quote the enclave, verify via IAS, issue the certificate.
    let (trust, cert) = provisioning::establish_trust(&engine, &mut rng)?;
    let ca = trust.auditor.ca_verifying_key();
    println!("auditor certified enclave {:?}", cert.measurement);

    // Step 4: a user verifies the certificate, then requests her key over
    // the encrypted channel; the enclave answers with her USK encrypted to
    // her ephemeral key. Neither the admin process nor the network sees it.
    let (session, request) = KeyRequest::new("alice@example.org", &cert, &ca, &mut rng)?;
    let reply = engine.provision_user_key(&request)?;
    let usk = session.receive(&reply)?;
    println!(
        "alice provisioned; usk is {} bytes, constant-size",
        usk.to_bytes().len()
    );

    // Sanity: the provisioned key actually works.
    let meta = engine.create_group("g", vec!["alice@example.org".into()])?;
    ibbe_sgx::core::client_decrypt_group_key(
        engine.public_key(),
        &usk,
        "alice@example.org",
        &meta,
    )?;
    println!("alice derived the group key with her provisioned usk");

    // A rogue enclave (different code ⇒ different measurement) cannot get
    // certified by this deployment's auditor — users will refuse it.
    let rogue_measurement = Measurement::of(b"rogue-enclave-that-leaks-keys");
    let quote = trust.platform.quote(
        rogue_measurement,
        report_data_for_key(&engine.channel_public_key().to_bytes()),
    );
    let verdict = trust
        .auditor
        .audit(&trust.ias, &quote, &engine.channel_public_key());
    println!("rogue enclave audit: {verdict:?}");
    assert!(verdict.is_err());

    // Equally, a forged certificate from an unknown CA is refused by users.
    let mut other_rng = rand::thread_rng();
    let rogue_ca = ibbe_sgx::sgx::bls::SigningKey::generate(&mut other_rng);
    assert!(KeyRequest::new("bob", &cert, &rogue_ca.verifying_key(), &mut rng).is_err());
    println!("certificate pinning rejects unknown CA");

    Ok(())
}
