//! Team drive: the paper's motivating scenario — collaborative editing of
//! encrypted documents on an untrusted cloud (paper §I–II, Fig. 1).
//!
//! An administrator manages the team through the attested enclave; members
//! encrypt documents client-side under the group key `gk` before uploading;
//! the cloud (and the admin!) only ever see ciphertext. Revocation rotates
//! `gk` so departed members cannot read documents written afterwards.
//!
//! ```sh
//! cargo run --release --example team_drive
//! ```

use ibbe_sgx::acs::{bootstrap_admin, provisioning, Client};
use ibbe_sgx::cloud::CloudStore;
use ibbe_sgx::core::PartitionSize;
use ibbe_sgx::symcrypto::gcm::AesGcm;

/// Client-side document encryption under the group key (AES-256-GCM, as the
/// paper's block-cipher layer).
fn encrypt_doc(gk: &[u8; 32], name: &str, body: &[u8]) -> Vec<u8> {
    let mut nonce = [0u8; 12];
    rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut nonce);
    let mut out = nonce.to_vec();
    out.extend_from_slice(&AesGcm::new(gk).seal(&nonce, name.as_bytes(), body));
    out
}

fn decrypt_doc(gk: &[u8; 32], name: &str, blob: &[u8]) -> Option<Vec<u8>> {
    let nonce: [u8; 12] = blob.get(..12)?.try_into().ok()?;
    AesGcm::new(gk)
        .open(&nonce, name.as_bytes(), blob.get(12..)?)
        .ok()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let cloud = CloudStore::new();

    // --- admin side -------------------------------------------------------
    let admin = bootstrap_admin(PartitionSize::new(16)?, cloud.clone(), &mut rng)?;
    let (trust, cert) = provisioning::establish_trust(admin.engine(), &mut rng)?;
    let ca = trust.auditor.ca_verifying_key();

    let team: Vec<String> = ["ada", "grace", "edsger", "barbara", "tony"]
        .map(String::from)
        .to_vec();
    admin.create_group("compilers-team", team.clone())?;
    println!("team created: {team:?}");

    // --- users provision their keys over the attested channel --------------
    let ada_usk = provisioning::provision_user(admin.engine(), &cert, &ca, "ada", &mut rng)?;
    let tony_usk = provisioning::provision_user(admin.engine(), &cert, &ca, "tony", &mut rng)?;

    let pk = admin.engine().public_key().clone();
    let mut ada = Client::new("ada", ada_usk, pk.clone(), cloud.clone(), "compilers-team");
    let mut tony = Client::new("tony", tony_usk, pk, cloud.clone(), "compilers-team");

    // --- ada writes an encrypted design doc --------------------------------
    let gk = ada.sync()?;
    let doc = b"Design: the new register allocator shall use SSA form.";
    cloud.put(
        "compilers-team-files",
        "allocator.md",
        encrypt_doc(gk.as_bytes(), "allocator.md", doc),
    );
    println!("ada uploaded allocator.md ({} bytes encrypted)", doc.len());

    // --- tony (another partition, same key) reads it ------------------------
    let gk_tony = tony.sync()?;
    let (blob, _) = cloud.get("compilers-team-files", "allocator.md").unwrap();
    let plain = decrypt_doc(gk_tony.as_bytes(), "allocator.md", &blob).expect("member can read");
    assert_eq!(plain, doc);
    println!(
        "tony decrypted allocator.md: \"{}…\"",
        String::from_utf8_lossy(&plain[..23])
    );

    // --- tony leaves the company -------------------------------------------
    admin.remove_user("compilers-team", "tony")?;
    let gk2 = ada.sync()?;
    println!("tony revoked; key rotated");

    // new documents use the rotated key…
    let memo = b"Post-mortem: Tony's branch broke the nightly builds.";
    cloud.put(
        "compilers-team-files",
        "memo.md",
        encrypt_doc(gk2.as_bytes(), "memo.md", memo),
    );

    // …and tony's stale key cannot read them, nor can he re-derive gk.
    let (blob, _) = cloud.get("compilers-team-files", "memo.md").unwrap();
    assert!(decrypt_doc(gk_tony.as_bytes(), "memo.md", &blob).is_none());
    assert!(tony.sync().is_err());
    println!("tony cannot read memo.md nor derive the new key");

    // the cloud never saw a key: every stored object is ciphertext or
    // public metadata (see acs tests for the systematic check)
    println!("cloud traffic: {:?}", cloud.metrics());
    Ok(())
}
