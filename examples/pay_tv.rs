//! Pay-per-view broadcasting: the paper's "other shared media" scenario
//! (§I: "peer-to-peer networks or pay-per-view TV").
//!
//! A broadcaster encrypts stream segments under the group key; subscribers
//! churn heavily (monthly cancellations are *revocations* and must be
//! enforced cryptographically). The partitioning mechanism keeps both the
//! broadcaster's revocation cost and each set-top box's decryption cost
//! bounded by the partition size.
//!
//! ```sh
//! cargo run --release --example pay_tv
//! ```

use ibbe_sgx::core::{client_decrypt_group_key, GroupEngine, PartitionSize};
use ibbe_sgx::symcrypto::gcm::AesGcm;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let partition = PartitionSize::new(32)?;
    let engine = GroupEngine::bootstrap(partition, &mut rng)?;

    // 200 subscribers at launch.
    let subscribers: Vec<String> = (0..200).map(|i| format!("stb-{i:04}")).collect();
    let t0 = Instant::now();
    let mut meta = engine.create_group("channel-7", subscribers.clone())?;
    println!(
        "channel launched: {} subscribers, {} partitions, setup {:?}",
        meta.member_count(),
        meta.partition_count(),
        t0.elapsed()
    );

    // Broadcast a segment: encrypt once under gk, send to everyone.
    let viewer = &subscribers[57];
    let usk = engine.extract_user_key(viewer)?;
    let gk = client_decrypt_group_key(engine.public_key(), &usk, viewer, &meta)?;
    let segment = vec![0x47u8; 1316]; // one MPEG-TS burst
    let nonce = [1u8; 12];
    let encrypted = AesGcm::new(gk.as_bytes()).seal(&nonce, b"seg-000001", &segment);
    println!(
        "segment of {} bytes encrypted once for all {} subscribers ({} bytes of group metadata)",
        segment.len(),
        meta.member_count(),
        meta.crypto_size_bytes()
    );

    // End of month: 30 cancellations. Each is a cryptographic revocation
    // whose cost is |P| constant-time re-keys, NOT O(subscribers).
    let t0 = Instant::now();
    for cancelled in subscribers.iter().take(30) {
        engine.remove_user(&mut meta, cancelled)?;
    }
    let churn_time = t0.elapsed();
    println!(
        "30 cancellations processed in {churn_time:?} ({:?}/revocation)",
        churn_time / 30
    );

    // A cancelled box cannot decrypt the next segment…
    let gone = &subscribers[0];
    let gone_usk = engine.extract_user_key(gone)?;
    assert!(client_decrypt_group_key(engine.public_key(), &gone_usk, gone, &meta).is_err());

    // …while a paying subscriber derives the rotated key; its decryption
    // work is bounded by the PARTITION size, not the subscriber count.
    let t0 = Instant::now();
    let gk2 = client_decrypt_group_key(engine.public_key(), &usk, viewer, &meta)?;
    println!(
        "set-top box {viewer} re-derived the key in {:?} (partition {} of {} total subscribers)",
        t0.elapsed(),
        partition.get(),
        meta.member_count()
    );
    assert_ne!(gk.as_bytes(), gk2.as_bytes());

    let _ = encrypted;
    Ok(())
}
