//! Quickstart: create a group, derive the group key as a member, revoke a
//! member, and watch the key rotate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ibbe_sgx::core::{client_decrypt_group_key, GroupEngine, PartitionSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();

    // Boot the admin enclave: IBBE system setup runs inside it and the
    // master secret never leaves (the admin itself is honest-but-curious).
    let engine = GroupEngine::bootstrap(PartitionSize::new(8)?, &mut rng)?;
    println!("enclave measurement: {:?}", engine.measurement());

    // Create a group. The metadata returned is safe to publish anywhere.
    let members: Vec<String> = ["alice", "bob", "carol", "dave"].map(String::from).to_vec();
    let mut meta = engine.create_group("design-docs", members.clone())?;
    println!(
        "group '{}': {} members in {} partition(s), {}B of crypto metadata",
        meta.name,
        meta.member_count(),
        meta.partition_count(),
        meta.crypto_size_bytes()
    );

    // Each member derives the same 256-bit group key from public metadata
    // plus their constant-size user secret key. No SGX needed here.
    let alice_usk = engine.extract_user_key("alice")?;
    let gk_alice = client_decrypt_group_key(engine.public_key(), &alice_usk, "alice", &meta)?;
    let bob_usk = engine.extract_user_key("bob")?;
    let gk_bob = client_decrypt_group_key(engine.public_key(), &bob_usk, "bob", &meta)?;
    assert_eq!(gk_alice, gk_bob);
    println!("alice and bob agree on the group key");

    // Revoke carol: the group key rotates; carol can no longer derive it.
    engine.remove_user(&mut meta, "carol")?;
    let gk_new = client_decrypt_group_key(engine.public_key(), &alice_usk, "alice", &meta)?;
    assert_ne!(gk_alice, gk_new);
    let carol_usk = engine.extract_user_key("carol")?;
    assert!(client_decrypt_group_key(engine.public_key(), &carol_usk, "carol", &meta).is_err());
    println!("carol revoked; group key rotated; carol locked out");

    Ok(())
}
