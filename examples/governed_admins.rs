//! Extensions from the paper's future-work section (§VIII), working
//! together: a **certified multi-admin operation log** (hash-chained and
//! BLS-signed, "blockchain-like") and **workload-adaptive partition
//! sizing**.
//!
//! ```sh
//! cargo run --release --example governed_admins
//! ```

use ibbe_sgx::acs::{AdminSigner, LogOp, OpLog};
use ibbe_sgx::core::{AdaptivePolicy, GroupEngine, PartitionSize};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();

    // Capacity fixed at bootstrap; the *live* fill adapts below it.
    let capacity = PartitionSize::new(64)?;
    let engine = GroupEngine::bootstrap(capacity, &mut rng)?;
    let mut policy = AdaptivePolicy::new(4, capacity.get())?;

    // Two administrators share duties; every operation lands in the
    // certified log. Auditors pin their verification keys.
    let admin_a = AdminSigner::new("admin-a", &mut rng);
    let admin_b = AdminSigner::new("admin-b", &mut rng);
    let registry: HashMap<_, _> = [
        (String::from("admin-a"), admin_a.verifying_key()),
        (String::from("admin-b"), admin_b.verifying_key()),
    ]
    .into();
    let mut log = OpLog::new();

    // admin-a creates the group.
    let members: Vec<String> = (0..48).map(|i| format!("emp-{i:03}")).collect();
    let mut meta =
        engine.create_group_with_fill("hr-records", members.clone(), policy.recommended(48))?;
    log.append(
        &admin_a,
        "hr-records",
        LogOp::Create {
            members: members.clone(),
        },
    );
    println!(
        "created with fill {} → {} partitions",
        policy.recommended(48).get(),
        meta.partition_count()
    );

    // admin-b handles a revocation-heavy quarter (layoffs): the policy
    // learns that re-keying dominates and recommends bigger partitions.
    for victim in members.iter().take(20) {
        engine.remove_user(&mut meta, victim)?;
        log.append(
            &admin_b,
            "hr-records",
            LogOp::Remove {
                user: victim.clone(),
            },
        );
        policy.record_remove();
    }
    let fill = policy.recommended(meta.member_count());
    println!(
        "after layoffs: policy recommends fill {} for {} members",
        fill.get(),
        meta.member_count()
    );
    if meta.needs_repartitioning(capacity.get()) || fill.get() != capacity.get() {
        meta = engine.repartition_with_fill(&meta, fill)?;
        log.append(&admin_a, "hr-records", LogOp::Rekey);
        println!(
            "re-partitioned into {} partition(s)",
            meta.partition_count()
        );
    }

    // Read-heavy steady state: decryptions dominate, the policy swings back
    // toward small partitions (cheap client decrypt).
    for _ in 0..200 {
        policy.record_decrypt();
    }
    println!(
        "read-heavy regime: policy now recommends fill {}",
        policy.recommended(meta.member_count()).get()
    );

    // Any auditor can verify the complete operation history…
    log.verify(&registry)
        .map_err(|(i, e)| format!("entry {i}: {e}"))?;
    println!("operation log verified: {} entries, 2 admins", log.len());

    // …and cross-check it against the live cryptographic state.
    let mut from_log = log.membership_of("hr-records");
    let mut live: Vec<String> = meta.members().map(String::from).collect();
    from_log.sort();
    live.sort();
    assert_eq!(from_log, live);
    println!("log-derived membership matches live group metadata");

    // Tampering attempts fail loudly.
    let mut forged = OpLog::new();
    forged.append(&admin_a, "hr-records", LogOp::Create { members: vec![] });
    let rogue = AdminSigner::new("rogue", &mut rng);
    forged.append(
        &rogue,
        "hr-records",
        LogOp::Add {
            user: "backdoor".into(),
        },
    );
    assert!(forged.verify(&registry).is_err());
    println!("rogue admin entry rejected by auditors");

    Ok(())
}
